// Copyright 2026 The OCTOPUS Reproduction Authors
// Measurement harness shared by the per-figure benchmark binaries and
// available to downstream users who want to compare approaches on their
// own meshes/workloads.
//
// The measurement protocol follows paper Sec. V-A:
//  * Range queries execute after the simulation finished updating the mesh
//    at each time step; the mesh is inconsistent mid-step, so no index
//    work happens during SIMULATE.
//  * "Total query response time" = per-step maintenance (rebuild/update)
//    + query execution, summed over all steps. Preprocessing (initial
//    build) is reported separately.
//  * All approaches replay the identical deformation sequence and query
//    workload (deterministic seeds).
#ifndef OCTOPUS_HARNESS_BENCH_HARNESS_H_
#define OCTOPUS_HARNESS_BENCH_HARNESS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/aabb.h"
#include "engine/query_engine.h"
#include "index/spatial_index.h"
#include "mesh/tetra_mesh.h"
#include "sim/deformer.h"

namespace octopus::bench {

/// Dataset scale factor from $OCTOPUS_BENCH_SCALE (default 1.0 = the
/// calibrated ~1/1000-of-paper scale). 0.1 gives a quick smoke run.
double ScaleFromEnv();

/// Simulation steps from $OCTOPUS_BENCH_STEPS (default `fallback`).
int StepsFromEnv(int fallback);

/// Query-execution threads from $OCTOPUS_BENCH_THREADS (default
/// `fallback`, normally 1).
int ThreadsFromEnv(int fallback = 1);

/// Per-step query batches, pre-generated so every approach sees the same
/// workload.
struct StepWorkload {
  std::vector<std::vector<AABB>> per_step;

  size_t TotalQueries() const {
    size_t n = 0;
    for (const auto& s : per_step) n += s.size();
    return n;
  }
};

/// Queries/step uniform in [qmin, qmax], selectivity uniform in
/// [sel_min, sel_max], centers at random mesh vertices.
StepWorkload MakeStepWorkload(const TetraMesh& mesh, int steps, int qmin,
                              int qmax, double sel_min, double sel_max,
                              uint64_t seed);

/// Fresh deformer per approach run (each run replays the same sequence).
using DeformerFactory = std::function<std::unique_ptr<Deformer>()>;

/// Outcome of one approach over one simulated monitoring run.
struct RunResult {
  double build_seconds = 0.0;        ///< one-time preprocessing
  double maintenance_seconds = 0.0;  ///< per-step BeforeQueries total
  double query_seconds = 0.0;        ///< RangeQuery total
  size_t footprint_bytes = 0;        ///< after the final step
  size_t total_results = 0;

  double TotalSeconds() const { return maintenance_seconds + query_seconds; }
};

/// Replays the full simulate->monitor loop for one approach on a private
/// copy of `base_mesh`. Each step's queries execute as one batch through
/// `engine` (OCTOPUS parallelizes across the engine's threads, the
/// baselines run sequentially); when `engine` is null an internal
/// single-threaded engine is used, which is behaviourally identical to
/// the historical per-query loop.
RunResult RunApproach(SpatialIndex* index, const TetraMesh& base_mesh,
                      const DeformerFactory& make_deformer,
                      const StepWorkload& workload,
                      engine::QueryEngine* engine = nullptr);

/// The paper's five compared approaches (Fig. 6): OCTOPUS, LinearScan,
/// OCTREE, LUR-Tree, QU-Trade — freshly constructed.
std::vector<std::unique_ptr<SpatialIndex>> MakeAllApproaches();

/// Standard deformer for neuroscience runs: plasticity field with
/// amplitude 0.3x the mean edge length of `mesh`.
DeformerFactory NeuroDeformerFactory(const TetraMesh& mesh);

}  // namespace octopus::bench

#endif  // OCTOPUS_HARNESS_BENCH_HARNESS_H_
