// Copyright 2026 The OCTOPUS Reproduction Authors
#include "sim/wave_deformer.h"

#include <algorithm>
#include <cassert>

namespace octopus {

void WaveDeformer::Bind(const TetraMesh& mesh) {
  rest_ = mesh.positions();
}

void WaveDeformer::ApplyStep(int step, TetraMesh* mesh) {
  (void)step;
  assert(rest_.size() == mesh->num_vertices() &&
         "Bind() not called or mesh restructured without rebinding");
  // Random-walk the strain and shift, clamped to their amplitudes.
  for (auto& row : strain_) {
    for (float& e : row) {
      e = std::clamp(e + rng_.NextFloat(-0.3f, 0.3f) * strain_amplitude_,
                     -strain_amplitude_, strain_amplitude_);
    }
  }
  const Vec3 delta = rng_.NextUnitVector() *
                     (0.3f * shift_amplitude_ *
                      static_cast<float>(rng_.NextDouble()));
  shift_ += delta;
  const float shift_norm = shift_.Norm();
  if (shift_norm > shift_amplitude_) {
    shift_ *= shift_amplitude_ / shift_norm;
  }

  std::vector<Vec3>& positions = mesh->mutable_positions();
  for (size_t v = 0; v < positions.size(); ++v) {
    const Vec3& r = rest_[v];
    positions[v] = Vec3(r.x + strain_[0][0] * r.x + strain_[0][1] * r.y +
                            strain_[0][2] * r.z + shift_.x,
                        r.y + strain_[1][0] * r.x + strain_[1][1] * r.y +
                            strain_[1][2] * r.z + shift_.y,
                        r.z + strain_[2][0] * r.x + strain_[2][1] * r.y +
                            strain_[2][2] * r.z + shift_.z);
  }
}

}  // namespace octopus
