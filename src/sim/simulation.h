// Copyright 2026 The OCTOPUS Reproduction Authors
// The simulation driver: alternates SIMULATE (deform the mesh in place)
// and MONITOR (run range queries) phases, exactly the timeline of paper
// Fig. 1(e). The simulation is a black box to the monitoring side; the two
// phases are never merged.
#ifndef OCTOPUS_SIM_SIMULATION_H_
#define OCTOPUS_SIM_SIMULATION_H_

#include <functional>

#include "mesh/tetra_mesh.h"
#include "sim/deformer.h"

namespace octopus {

/// \brief Drives a deformer over a mesh in discrete time steps.
class Simulation {
 public:
  /// Binds `deformer` to `mesh`. Both must outlive the simulation.
  Simulation(TetraMesh* mesh, Deformer* deformer)
      : mesh_(mesh), deformer_(deformer) {
    deformer_->Bind(*mesh_);
  }

  /// Advances one time step: overwrites all vertex positions in place.
  /// Afterwards the mesh is consistent and may be queried (MONITOR phase).
  void Step() {
    ++current_step_;
    deformer_->ApplyStep(current_step_, mesh_);
  }

  /// Runs `steps` SIMULATE phases, invoking `monitor` after each.
  void Run(int steps, const std::function<void(int step)>& monitor) {
    for (int i = 0; i < steps; ++i) {
      Step();
      if (monitor) monitor(current_step_);
    }
  }

  int current_step() const { return current_step_; }
  TetraMesh& mesh() { return *mesh_; }

 private:
  TetraMesh* mesh_;
  Deformer* deformer_;
  int current_step_ = 0;
};

}  // namespace octopus

#endif  // OCTOPUS_SIM_SIMULATION_H_
