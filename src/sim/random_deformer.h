// Copyright 2026 The OCTOPUS Reproduction Authors
// Unpredictable deformation: fresh bounded random displacement of every
// vertex at every step. This is the adversarial workload of the paper's
// problem statement — no trajectory, no velocity class, nothing an index
// could exploit.
#ifndef OCTOPUS_SIM_RANDOM_DEFORMER_H_
#define OCTOPUS_SIM_RANDOM_DEFORMER_H_

#include <vector>

#include "common/rng.h"
#include "sim/deformer.h"

namespace octopus {

/// \brief Displaces each vertex by an independent random vector each step.
///
/// Displacements are taken around the rest positions with magnitude <=
/// `amplitude`, so consecutive steps move each vertex by up to
/// 2 * amplitude in an unpredictable direction.
class RandomDeformer : public Deformer {
 public:
  /// \param amplitude maximum displacement from rest; choose well below
  ///   half the mean edge length to keep elements valid.
  /// \param seed RNG seed; the step index is mixed in, so replaying a step
  ///   is deterministic.
  explicit RandomDeformer(float amplitude, uint64_t seed = 42)
      : amplitude_(amplitude), seed_(seed) {}

  void Bind(const TetraMesh& mesh) override {
    rest_ = mesh.positions();
  }

  void ApplyStep(int step, TetraMesh* mesh) override;

  float amplitude() const { return amplitude_; }

 private:
  float amplitude_;
  uint64_t seed_;
  std::vector<Vec3> rest_;
};

}  // namespace octopus

#endif  // OCTOPUS_SIM_RANDOM_DEFORMER_H_
