// Copyright 2026 The OCTOPUS Reproduction Authors
// Convexity-preserving deformation for earthquake-style simulations.
// A time-varying affine map (small shear/scale/translation) is applied to
// the rest positions; affine maps preserve convexity exactly, which is the
// precondition of OCTOPUS-CON (paper Sec. IV-F).
#ifndef OCTOPUS_SIM_WAVE_DEFORMER_H_
#define OCTOPUS_SIM_WAVE_DEFORMER_H_

#include <vector>

#include "common/rng.h"
#include "sim/deformer.h"

namespace octopus {

/// \brief Affine "ground shaking" deformation.
///
/// position(t) = (I + E(t)) * rest + b(t), where E is a small random-walk
/// strain matrix and b a small random-walk translation. Unpredictable step
/// to step (random walk), yet the mesh stays convex at all times.
class WaveDeformer : public Deformer {
 public:
  /// \param strain_amplitude bound on |E| entries (e.g. 0.02 = 2% strain).
  /// \param shift_amplitude bound on translation magnitude.
  WaveDeformer(float strain_amplitude, float shift_amplitude,
               uint64_t seed = 99)
      : strain_amplitude_(strain_amplitude),
        shift_amplitude_(shift_amplitude),
        rng_(seed) {}

  void Bind(const TetraMesh& mesh) override;
  void ApplyStep(int step, TetraMesh* mesh) override;

 private:
  float strain_amplitude_;
  float shift_amplitude_;
  Rng rng_;
  std::vector<Vec3> rest_;
  // Current strain/translation random-walk state.
  float strain_[3][3] = {};
  Vec3 shift_;
};

}  // namespace octopus

#endif  // OCTOPUS_SIM_WAVE_DEFORMER_H_
