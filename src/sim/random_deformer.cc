// Copyright 2026 The OCTOPUS Reproduction Authors
#include "sim/random_deformer.h"

#include <cassert>

namespace octopus {

void RandomDeformer::ApplyStep(int step, TetraMesh* mesh) {
  assert(rest_.size() == mesh->num_vertices() &&
         "Bind() not called or mesh restructured without rebinding");
  Rng rng(seed_ ^ (static_cast<uint64_t>(step) * 0x9E3779B97F4A7C15ull));
  std::vector<Vec3>& positions = mesh->mutable_positions();
  for (size_t v = 0; v < positions.size(); ++v) {
    const Vec3 dir = rng.NextUnitVector();
    const float mag = amplitude_ * static_cast<float>(rng.NextDouble());
    positions[v] = rest_[v] + dir * mag;
  }
}

}  // namespace octopus
