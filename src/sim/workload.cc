// Copyright 2026 The OCTOPUS Reproduction Authors
#include "sim/workload.h"

#include <algorithm>
#include <cassert>

namespace octopus {

QueryGenerator::QueryGenerator(const TetraMesh& mesh,
                               int histogram_resolution)
    : mesh_(mesh),
      histogram_(histogram_resolution),
      bounds_(mesh.ComputeBounds()) {
  histogram_.Build(mesh.positions(), bounds_);
}

AABB QueryGenerator::MakeQuery(Rng* rng, double target_selectivity) const {
  assert(target_selectivity > 0.0 && target_selectivity <= 1.0);
  const Vec3 center =
      mesh_.position(static_cast<VertexId>(rng->NextBelow(
          std::max<uint64_t>(mesh_.num_vertices(), 1))));
  const double target = target_selectivity *
                        static_cast<double>(mesh_.num_vertices());

  // Binary search the cubic half-extent. Count is monotone in h.
  const Vec3 ext = bounds_.Extent();
  float hi = 0.5f * std::max({ext.x, ext.y, ext.z});
  float lo = 0.0f;
  for (int iter = 0; iter < 40; ++iter) {
    const float h = 0.5f * (lo + hi);
    const AABB box = AABB::FromCenterHalfExtent(center, Vec3(h, h, h));
    const double estimate = histogram_.EstimateCount(box);
    if (estimate < target) {
      lo = h;
    } else {
      hi = h;
    }
  }
  const float h = 0.5f * (lo + hi);
  return AABB::FromCenterHalfExtent(center, Vec3(h, h, h));
}

std::vector<AABB> QueryGenerator::MakeQueries(Rng* rng, int count,
                                              double sel_lo,
                                              double sel_hi) const {
  std::vector<AABB> queries;
  queries.reserve(count);
  for (int i = 0; i < count; ++i) {
    const double sel =
        sel_lo + (sel_hi - sel_lo) * rng->NextDouble();
    queries.push_back(MakeQuery(rng, sel));
  }
  return queries;
}

std::vector<BenchmarkSpec> NeuroscienceBenchmarks() {
  // Paper Fig. 5. Selectivities are percentages there; stored as fractions.
  return {
      {"A) Structural Validation", 13, 17, 0.0011, 0.0016},
      {"B) Mesh Quality", 7, 9, 0.0002, 0.0014},
      {"C) Visualization (Low Quality)", 22, 22, 0.0018, 0.0018},
      {"D) Visualization (High Quality)", 22, 22, 0.0012, 0.0012},
  };
}

}  // namespace octopus
