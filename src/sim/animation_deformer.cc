// Copyright 2026 The OCTOPUS Reproduction Authors
#include "sim/animation_deformer.h"

#include <cassert>
#include <cmath>

namespace octopus {

namespace {
constexpr float kTwoPi = 6.2831853f;
}

void AnimationDeformer::Bind(const TetraMesh& mesh) {
  rest_ = mesh.positions();
  Vec3 sum(0, 0, 0);
  for (const Vec3& p : rest_) sum += p;
  centroid_ = rest_.empty() ? Vec3(0, 0, 0)
                            : sum / static_cast<float>(rest_.size());
}

void AnimationDeformer::ApplyStep(int step, TetraMesh* mesh) {
  assert(rest_.size() == mesh->num_vertices() &&
         "Bind() not called or mesh restructured without rebinding");
  const int period = AnimationTimeSteps(which_);
  const float t = static_cast<float>(step % period) /
                  static_cast<float>(period);
  std::vector<Vec3>& positions = mesh->mutable_positions();

  switch (which_) {
    case AnimationDataset::kHorseGallop: {
      // Vertical bending wave traveling along x.
      for (size_t v = 0; v < positions.size(); ++v) {
        const Vec3& r = rest_[v];
        const float wave =
            std::sin(kTwoPi * (2.0f * r.x - t)) * amplitude_;
        positions[v] = Vec3(r.x, r.y, r.z + wave);
      }
      break;
    }
    case AnimationDataset::kFacialExpression: {
      // Three blendshape-like Gaussian bumps, weights cycling with t.
      static constexpr Vec3 kBumpCenters[3] = {
          Vec3(0.42f, 0.40f, 0.72f),  // brow
          Vec3(0.58f, 0.62f, 0.40f),  // cheek
          Vec3(0.50f, 0.50f, 0.22f),  // jaw
      };
      const float weights[3] = {std::sin(kTwoPi * t),
                                std::sin(kTwoPi * t + 2.094f),
                                std::sin(kTwoPi * t + 4.189f)};
      const float inv_sigma2 = 1.0f / (2.0f * 0.12f * 0.12f);
      for (size_t v = 0; v < positions.size(); ++v) {
        const Vec3& r = rest_[v];
        Vec3 d(0, 0, 0);
        for (int b = 0; b < 3; ++b) {
          const float dist2 = SquaredDistance(r, kBumpCenters[b]);
          const float g = std::exp(-dist2 * inv_sigma2);
          // Push outward from the mesh centroid, expression-like. The
          // direction field is singular at the centroid; taper the
          // magnitude to zero there so nearby elements cannot invert.
          Vec3 out = r - centroid_;
          const float n = out.Norm();
          if (n > 1e-6f) out = out / n;
          const float taper = std::min(n / 0.15f, 1.0f);
          d += out * (weights[b] * g * amplitude_ * taper);
        }
        positions[v] = r + d;
      }
      break;
    }
    case AnimationDataset::kCamelCompress: {
      // Squash along z around the centroid, bulge in x/y to compensate.
      const float squash =
          1.0f - amplitude_ * 0.5f * (1.0f - std::cos(kTwoPi * t));
      const float bulge = 1.0f / std::sqrt(squash);
      for (size_t v = 0; v < positions.size(); ++v) {
        const Vec3& r = rest_[v];
        const Vec3 d = r - centroid_;
        positions[v] = Vec3(centroid_.x + d.x * bulge,
                            centroid_.y + d.y * bulge,
                            centroid_.z + d.z * squash);
      }
      break;
    }
  }
}

}  // namespace octopus
