// Copyright 2026 The OCTOPUS Reproduction Authors
// Neural-plasticity-style deformation: a smooth, spatially correlated
// velocity field whose phases drift unpredictably per step. Neighboring
// vertices move similarly ("groups of neighboring mesh elements move
// similarly throughout the simulation", paper Sec. IV-H2) — which is what
// makes the surface-approximation optimization effective — while each
// vertex drifts progressively over the simulation, like spine lengths
// that keep adjusting (paper Sec. V-A). Sustained drift is what defeats
// grace-window indexes: bounded oscillation would let them win for free.
#ifndef OCTOPUS_SIM_PLASTICITY_DEFORMER_H_
#define OCTOPUS_SIM_PLASTICITY_DEFORMER_H_

#include <vector>

#include "common/rng.h"
#include "sim/deformer.h"

namespace octopus {

/// \brief Integrated sum-of-harmonics displacement field with random
/// phase walk.
///
/// velocity(p, t) = amplitude * sum_h dir_h * sin(k_h . p + phi_h(t)),
/// displacement(v, t) = displacement(v, t-1) + velocity(rest_v, t).
/// Each phi_h performs an independent random walk over steps, so the
/// motion is unpredictable in time (no extrapolatable trajectory) yet
/// smooth in space. Displacement accumulates ~ amplitude * sqrt(t); local
/// strain stays small because the wavelengths are long relative to edge
/// lengths.
class PlasticityDeformer : public Deformer {
 public:
  /// \param amplitude per-step displacement bound; keep below half the
  ///   mean edge length so elements never invert over realistic horizons.
  /// \param num_harmonics number of spatial waves (3-6 is plenty).
  PlasticityDeformer(float amplitude, int num_harmonics = 4,
                     uint64_t seed = 7);

  void Bind(const TetraMesh& mesh) override;
  void ApplyStep(int step, TetraMesh* mesh) override;

 private:
  struct Harmonic {
    Vec3 wave_vector;
    Vec3 direction;
    float phase;
  };

  float amplitude_;
  Rng rng_;
  std::vector<Harmonic> harmonics_;
  std::vector<Vec3> rest_;
  std::vector<Vec3> displacement_;  // accumulated drift per vertex
};

}  // namespace octopus

#endif  // OCTOPUS_SIM_PLASTICITY_DEFORMER_H_
