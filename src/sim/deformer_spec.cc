// Copyright 2026 The OCTOPUS Reproduction Authors
#include "sim/deformer_spec.h"

#include "sim/plasticity_deformer.h"
#include "sim/random_deformer.h"
#include "sim/wave_deformer.h"

namespace octopus {

const char* DeformerKindName(DeformerKind kind) {
  switch (kind) {
    case DeformerKind::kNone: return "none";
    case DeformerKind::kRandom: return "random";
    case DeformerKind::kWave: return "wave";
    case DeformerKind::kPlasticity: return "plasticity";
  }
  return "unknown";
}

bool ParseDeformerKind(const std::string& name, DeformerKind* out) {
  if (name == "random") {
    *out = DeformerKind::kRandom;
  } else if (name == "wave") {
    *out = DeformerKind::kWave;
  } else if (name == "plasticity") {
    *out = DeformerKind::kPlasticity;
  } else {
    return false;
  }
  return true;
}

Result<std::unique_ptr<Deformer>> MakeDeformer(const DeformerSpec& spec) {
  if (spec.amplitude <= 0.0f) {
    return Status::InvalidArgument(
        "deformer amplitude must be resolved (> 0) before MakeDeformer");
  }
  switch (spec.kind) {
    case DeformerKind::kRandom:
      return std::unique_ptr<Deformer>(
          std::make_unique<RandomDeformer>(spec.amplitude, spec.seed));
    case DeformerKind::kWave:
      // Amplitude maps to the translation bound; strain stays a small
      // fixed fraction so the affine map preserves element validity.
      return std::unique_ptr<Deformer>(std::make_unique<WaveDeformer>(
          /*strain_amplitude=*/0.01f, spec.amplitude, spec.seed));
    case DeformerKind::kPlasticity:
      return std::unique_ptr<Deformer>(std::make_unique<PlasticityDeformer>(
          spec.amplitude, /*num_harmonics=*/4, spec.seed));
    case DeformerKind::kNone:
      break;
  }
  return Status::InvalidArgument("no deformer kind bound");
}

Result<std::unique_ptr<Deformer>> MakeDeformerResolving(
    DeformerSpec* spec, float mean_edge_length) {
  if (spec->amplitude <= 0.0f) {
    spec->amplitude = DefaultAmplitude(mean_edge_length);
    if (spec->amplitude <= 0.0f) {
      return Status::InvalidArgument(
          "cannot derive a deformation amplitude from this mesh");
    }
  }
  return MakeDeformer(*spec);
}

float DefaultAmplitude(float mean_edge_length) {
  // Well below half an edge: RandomDeformer moves each vertex by up to
  // 2x amplitude between consecutive steps.
  return 0.2f * mean_edge_length;
}

}  // namespace octopus
