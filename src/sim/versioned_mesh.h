// Copyright 2026 The OCTOPUS Reproduction Authors
// The epoch-versioned in-memory mesh: one live simulation state plus a
// chain of immutable published position buffers. The simulation side
// (`AdvanceStep`) deforms the live mesh in place — exactly the paper's
// Fig. 1(e) SIMULATE phase — then *publishes* the new positions as a
// fresh `PositionEpoch` with a copy-on-write pointer swap. The query
// side (`Pin`) grabs the current epoch in O(1) and executes entirely
// against it: queries never block on an in-flight step (the swap is a
// pointer assignment; the O(V) deformation happens outside any lock) and
// are never torn by one (a pinned buffer is immutable forever).
//
// Connectivity never changes under deformation, so every epoch shares
// the base mesh's CSR adjacency; only positions are versioned. The
// surface index built at load time is shared too — and *stale*, which is
// the paper's central claim: OCTOPUS needs no maintenance on
// deformation.
#ifndef OCTOPUS_SIM_VERSIONED_MESH_H_
#define OCTOPUS_SIM_VERSIONED_MESH_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "engine/mesh_epoch.h"
#include "mesh/graph_view.h"
#include "mesh/tetra_mesh.h"
#include "sim/deformer.h"
#include "sim/deformer_spec.h"

namespace octopus {

/// \brief One published, immutable position state.
struct PositionEpoch {
  engine::EpochInfo info;
  std::vector<Vec3> positions;
};

/// \brief A mesh whose positions advance in epochs.
///
/// Thread model: `AdvanceStep` is called by one stepper at a time (a
/// dedicated thread or the event loop — it is internally serialized but
/// not meant to be contended); `Pin`, `CurrentEpoch` and `PinnedGraph`
/// are safe from any thread concurrently with a step. The publication
/// mutex guards only the pointer swap, never the deformation work.
class VersionedMesh {
 public:
  explicit VersionedMesh(TetraMesh mesh) : mesh_(std::move(mesh)) {}

  /// Base connectivity (+ the step-0 positions the index was built on).
  const TetraMesh& base() const { return mesh_; }

  /// Binds the spec'd deformer and publishes epoch 0 (a copy of the
  /// current positions), so queries stop reading the live-mutated
  /// array. An unresolved amplitude (0) is derived from the mesh.
  /// At most one deformer per mesh; rebinding is an error.
  Status BindDeformer(const DeformerSpec& spec);

  bool dynamic() const { return deformer_ != nullptr; }
  DeformerKind deformer_kind() const { return spec_.kind; }
  /// The bound spec with `amplitude` resolved (for logging/parity).
  const DeformerSpec& spec() const { return spec_; }

  /// SIMULATE phase: advances the live mesh one step and publishes the
  /// result as a new epoch. Requires a bound deformer. Returns the
  /// published epoch's identity.
  engine::EpochInfo AdvanceStep();

  /// Pins the current epoch. Null until a deformer is bound (the mesh
  /// is static; read `base()` directly — that is the zero-overhead
  /// static path). Never null afterwards.
  std::shared_ptr<const PositionEpoch> Pin() const {
    common::MutexLock lock(publish_mu_);
    return published_;
  }

  engine::EpochInfo CurrentEpoch() const {
    common::MutexLock lock(publish_mu_);
    return published_ ? published_->info : engine::EpochInfo{};
  }

  /// Graph view over a pinned epoch's positions and the shared
  /// adjacency; with a null pin, the base mesh's own view.
  MeshGraphView PinnedGraph(const PositionEpoch* pin) const {
    MeshGraphView graph = mesh_.Graph();
    if (pin != nullptr) graph.positions = pin->positions;
    return graph;
  }

 private:
  TetraMesh mesh_;  // live simulation state; positions mutate per step
  DeformerSpec spec_;
  std::unique_ptr<Deformer> deformer_;
  common::Mutex step_mu_;  // serializes AdvanceStep
  mutable common::Mutex publish_mu_;  // guards only the pointer swap
  std::shared_ptr<const PositionEpoch> published_ GUARDED_BY(publish_mu_);
};

}  // namespace octopus

#endif  // OCTOPUS_SIM_VERSIONED_MESH_H_
