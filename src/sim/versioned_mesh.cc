// Copyright 2026 The OCTOPUS Reproduction Authors
#include "sim/versioned_mesh.h"

#include <utility>

namespace octopus {

Status VersionedMesh::BindDeformer(const DeformerSpec& spec) {
  if (deformer_ != nullptr) {
    return Status::InvalidArgument("a deformer is already bound");
  }
  DeformerSpec resolved = spec;
  auto deformer =
      MakeDeformerResolving(&resolved, EstimateMeanEdgeLength(mesh_));
  if (!deformer.ok()) return deformer.status();
  deformer_ = deformer.MoveValue();
  deformer_->Bind(mesh_);
  spec_ = resolved;

  // Epoch ids start at 1: the wire reserves 0 for "whatever is
  // current", so id 1 keeps the initial (step-0) state addressable even
  // after later steps supersede it.
  auto epoch0 = std::make_shared<PositionEpoch>();
  epoch0->info = engine::EpochInfo{1, 0};
  epoch0->positions = mesh_.positions();
  {
    common::MutexLock lock(publish_mu_);
    published_ = std::move(epoch0);
  }
  return Status::OK();
}

engine::EpochInfo VersionedMesh::AdvanceStep() {
  common::MutexLock step_lock(step_mu_);
  // SIMULATE: O(V) in-place deformation of the live mesh. Queries never
  // see this array (they pin published buffers), so no lock is held.
  const engine::EpochInfo last = CurrentEpoch();
  auto next = std::make_shared<PositionEpoch>();
  next->info.epoch = last.epoch + 1;
  next->info.step = last.step + 1;
  deformer_->ApplyStep(static_cast<int>(next->info.step), &mesh_);
  next->positions = mesh_.positions();
  const engine::EpochInfo info = next->info;
  {
    common::MutexLock lock(publish_mu_);
    published_ = std::move(next);
  }
  return info;
}

}  // namespace octopus
