// Copyright 2026 The OCTOPUS Reproduction Authors
// Mesh restructuring operations (paper Sec. IV-E2): the rare connectivity
// changes — polyhedra split or merged — that are the only events requiring
// surface-index maintenance. Each operation mutates the mesh and returns
// the RestructureDelta that indexes consume for incremental updates.
#ifndef OCTOPUS_SIM_RESTRUCTURER_H_
#define OCTOPUS_SIM_RESTRUCTURER_H_

#include "common/rng.h"
#include "common/status.h"
#include "mesh/tetra_mesh.h"
#include "mesh/types.h"

namespace octopus {

/// \brief 1-to-4 split: replaces tet `t` by four tets around a new vertex
/// at its centroid.
///
/// Pure interior refinement: the outer faces of `t` survive in the new
/// tets, so the mesh surface is unchanged (a useful do-nothing case for
/// surface-index maintenance).
Result<RestructureDelta> SplitTetAtCentroid(TetraMesh* mesh, TetId t);

/// \brief Grows the mesh by one tet glued onto surface face `face`, with a
/// new apex vertex at `apex`.
///
/// `face` must currently be a surface face. The face becomes interior;
/// three new faces (and the apex) join the surface.
Result<RestructureDelta> AddTetOnSurfaceFace(TetraMesh* mesh,
                                             const FaceKey& face,
                                             const Vec3& apex);

/// \brief Removes tet `t` (polyhedra "merge"/erosion).
///
/// Interior faces of `t` become surface faces; fails (NotFound /
/// InvalidArgument) if `t` does not exist or removing it would orphan a
/// vertex.
Result<RestructureDelta> RemoveTet(TetraMesh* mesh, TetId t);

/// \brief Applies `count` random centroid splits; convenience for
/// stress-testing index maintenance. Returns the merged delta.
Result<RestructureDelta> RandomRefinement(TetraMesh* mesh, int count,
                                          Rng* rng);

}  // namespace octopus

#endif  // OCTOPUS_SIM_RESTRUCTURER_H_
