// Copyright 2026 The OCTOPUS Reproduction Authors
#include "sim/restructurer.h"

#include <cassert>
#include <string>
#include <unordered_set>

namespace octopus {

namespace {

Vec3 TetCentroid(const TetraMesh& mesh, const Tet& t) {
  return (mesh.position(t[0]) + mesh.position(t[1]) + mesh.position(t[2]) +
          mesh.position(t[3])) *
         0.25f;
}

// Appends the four sub-tets of splitting `t` at new vertex `m`.
void AppendCentroidSplitTets(const Tet& t, VertexId m,
                             std::vector<Tet>* out) {
  out->push_back(Tet{m, t[1], t[2], t[3]});
  out->push_back(Tet{t[0], m, t[2], t[3]});
  out->push_back(Tet{t[0], t[1], m, t[3]});
  out->push_back(Tet{t[0], t[1], t[2], m});
}

}  // namespace

Result<RestructureDelta> SplitTetAtCentroid(TetraMesh* mesh, TetId t) {
  if (t >= mesh->num_tetrahedra()) {
    return Status::NotFound("tet id " + std::to_string(t) + " out of range");
  }
  const Tet old = mesh->tetrahedra()[t];
  RestructureDelta delta;
  delta.removed_tets.push_back(old);
  const VertexId m =
      mesh->AddVertexForRestructure(TetCentroid(*mesh, old));
  delta.added_vertices.push_back(m);
  AppendCentroidSplitTets(old, m, &delta.added_tets);
  const bool ok = mesh->ApplyRestructure(delta);
  assert(ok && "centroid split cannot fail after validation");
  (void)ok;
  return delta;
}

Result<RestructureDelta> AddTetOnSurfaceFace(TetraMesh* mesh,
                                             const FaceKey& face,
                                             const Vec3& apex) {
  // The face must exist and be on the surface, i.e. contained in exactly
  // one tet. O(#tets) scan; restructuring is rare so this is acceptable.
  int count = 0;
  for (const Tet& t : mesh->tetrahedra()) {
    for (const FaceKey& f : TetFaces(t)) {
      if (f == face) ++count;
    }
  }
  if (count == 0) {
    return Status::NotFound("face does not exist in the mesh");
  }
  if (count != 1) {
    return Status::InvalidArgument("face is interior, not on the surface");
  }
  RestructureDelta delta;
  const VertexId apex_id = mesh->AddVertexForRestructure(apex);
  delta.added_vertices.push_back(apex_id);
  delta.added_tets.push_back(Tet{face[0], face[1], face[2], apex_id});
  const bool ok = mesh->ApplyRestructure(delta);
  assert(ok && "surface extrusion cannot fail after validation");
  (void)ok;
  return delta;
}

Result<RestructureDelta> RemoveTet(TetraMesh* mesh, TetId t) {
  if (t >= mesh->num_tetrahedra()) {
    return Status::NotFound("tet id " + std::to_string(t) + " out of range");
  }
  const Tet old = mesh->tetrahedra()[t];
  for (VertexId v : old) {
    if (mesh->incident_tet_count(v) <= 1) {
      return Status::InvalidArgument(
          "removing tet would orphan vertex " + std::to_string(v));
    }
  }
  RestructureDelta delta;
  delta.removed_tets.push_back(old);
  if (!mesh->ApplyRestructure(delta)) {
    return Status::InvalidArgument("restructure rejected tet removal");
  }
  return delta;
}

Result<RestructureDelta> RandomRefinement(TetraMesh* mesh, int count,
                                          Rng* rng) {
  if (count <= 0) {
    return Status::InvalidArgument("refinement count must be positive");
  }
  if (mesh->num_tetrahedra() == 0) {
    return Status::InvalidArgument("mesh has no tetrahedra");
  }
  // Pick distinct tets, then apply all splits as one batch (one adjacency
  // rebuild instead of `count`).
  std::unordered_set<TetId> chosen;
  const size_t limit =
      std::min<size_t>(count, mesh->num_tetrahedra());
  while (chosen.size() < limit) {
    chosen.insert(
        static_cast<TetId>(rng->NextBelow(mesh->num_tetrahedra())));
  }
  RestructureDelta delta;
  for (TetId t : chosen) {
    const Tet old = mesh->tetrahedra()[t];
    delta.removed_tets.push_back(old);
    const VertexId m =
        mesh->AddVertexForRestructure(TetCentroid(*mesh, old));
    delta.added_vertices.push_back(m);
    AppendCentroidSplitTets(old, m, &delta.added_tets);
  }
  const bool ok = mesh->ApplyRestructure(delta);
  assert(ok && "batched centroid splits cannot fail after validation");
  (void)ok;
  return delta;
}

}  // namespace octopus
