// Copyright 2026 The OCTOPUS Reproduction Authors
#include "sim/plasticity_deformer.h"

#include <cassert>
#include <cmath>

namespace octopus {

PlasticityDeformer::PlasticityDeformer(float amplitude, int num_harmonics,
                                       uint64_t seed)
    : amplitude_(amplitude), rng_(seed) {
  harmonics_.resize(num_harmonics);
  for (Harmonic& h : harmonics_) {
    // Wavelengths on the order of 1/2 .. 2 of the unit domain: long enough
    // that neighboring vertices move almost identically (the spatial
    // correlation surface approximation relies on) and that accumulated
    // strain stays far below element inversion.
    h.wave_vector = rng_.NextUnitVector() * rng_.NextFloat(3.0f, 12.0f);
    h.direction = rng_.NextUnitVector();
    h.phase = rng_.NextFloat(0.0f, 6.2831853f);
  }
}

void PlasticityDeformer::Bind(const TetraMesh& mesh) {
  rest_ = mesh.positions();
  displacement_.assign(rest_.size(), Vec3(0, 0, 0));
}

void PlasticityDeformer::ApplyStep(int step, TetraMesh* mesh) {
  (void)step;
  assert(rest_.size() == mesh->num_vertices() &&
         "Bind() not called or mesh restructured without rebinding");
  // Random phase walk: the velocity field at step t+1 is not predictable
  // from the field at step t (fresh randomness each call).
  for (Harmonic& h : harmonics_) {
    h.phase += rng_.NextFloat(-0.8f, 0.8f);
  }
  const float per_harmonic =
      amplitude_ / static_cast<float>(harmonics_.size());
  std::vector<Vec3>& positions = mesh->mutable_positions();
  for (size_t v = 0; v < positions.size(); ++v) {
    const Vec3& r = rest_[v];
    Vec3 velocity(0, 0, 0);
    for (const Harmonic& h : harmonics_) {
      const float s = std::sin(h.wave_vector.Dot(r) + h.phase);
      velocity += h.direction * (per_harmonic * s);
    }
    displacement_[v] += velocity;  // progressive drift, not oscillation
    positions[v] = r + displacement_[v];
  }
}

}  // namespace octopus
