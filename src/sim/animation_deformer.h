// Copyright 2026 The OCTOPUS Reproduction Authors
// Keyframed deformations mimicking the three deforming-mesh animation
// sequences of paper Sec. VIII-A (horse gallop, facial expression, camel
// compress — Sumner & Popovic's deformation-transfer data).
#ifndef OCTOPUS_SIM_ANIMATION_DEFORMER_H_
#define OCTOPUS_SIM_ANIMATION_DEFORMER_H_

#include <vector>

#include "mesh/generators/datasets.h"
#include "sim/deformer.h"

namespace octopus {

/// \brief Procedural analog of a mesh-animation sequence.
///
/// * Horse gallop — traveling vertical bending wave along the body axis.
/// * Facial expression — localized Gaussian bumps with periodic weights
///   (blendshape-style).
/// * Camel compress — periodic squash along z with lateral bulge.
class AnimationDeformer : public Deformer {
 public:
  explicit AnimationDeformer(AnimationDataset which, float amplitude)
      : which_(which), amplitude_(amplitude) {}

  void Bind(const TetraMesh& mesh) override;
  void ApplyStep(int step, TetraMesh* mesh) override;

 private:
  AnimationDataset which_;
  float amplitude_;
  std::vector<Vec3> rest_;
  Vec3 centroid_;
};

}  // namespace octopus

#endif  // OCTOPUS_SIM_ANIMATION_DEFORMER_H_
