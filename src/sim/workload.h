// Copyright 2026 The OCTOPUS Reproduction Authors
// Range-query workload generation: uniformly placed box queries with a
// target selectivity, plus the paper's four neuroscience micro-benchmarks
// (Fig. 5).
#ifndef OCTOPUS_SIM_WORKLOAD_H_
#define OCTOPUS_SIM_WORKLOAD_H_

#include <string>
#include <vector>

#include "common/aabb.h"
#include "common/histogram3d.h"
#include "common/rng.h"
#include "engine/query_batch.h"
#include "mesh/tetra_mesh.h"

namespace octopus {

/// \brief Generates box queries of a given target selectivity.
///
/// Selectivity (fraction of mesh vertices inside the box) is hit
/// approximately, via binary search on the box half-extent against a 3D
/// histogram built once over the initial positions. The paper's workloads
/// quote selectivity ranges, not exact values, so histogram accuracy is
/// sufficient; deformation amplitudes are small relative to the mesh, so
/// the initial histogram stays representative.
class QueryGenerator {
 public:
  /// \param histogram_resolution buckets per axis of the estimator.
  explicit QueryGenerator(const TetraMesh& mesh,
                          int histogram_resolution = 32);

  /// One cubic query centered at the position of a random mesh vertex
  /// (guaranteeing the query region intersects the dataset, as in the
  /// paper's "located uniform randomly in the mesh").
  AABB MakeQuery(Rng* rng, double target_selectivity) const;

  /// A batch of queries with selectivities uniform in [sel_lo, sel_hi].
  std::vector<AABB> MakeQueries(Rng* rng, int count, double sel_lo,
                                double sel_hi) const;

  /// Same workload as `MakeQueries`, packaged for the `QueryEngine`'s
  /// batched execution path.
  engine::QueryBatch MakeBatch(Rng* rng, int count, double sel_lo,
                               double sel_hi) const {
    return engine::QueryBatch(MakeQueries(rng, count, sel_lo, sel_hi));
  }

  const Histogram3D& histogram() const { return histogram_; }

 private:
  const TetraMesh& mesh_;
  Histogram3D histogram_;
  AABB bounds_;
};

/// \brief One row of the paper's Fig. 5 micro-benchmark table.
struct BenchmarkSpec {
  std::string name;
  int queries_per_step_min = 0;
  int queries_per_step_max = 0;
  double selectivity_min = 0.0;  // fraction, e.g. 0.0011 for 0.11%
  double selectivity_max = 0.0;
};

/// The four neuroscience monitoring micro-benchmarks (paper Fig. 5):
/// A) structural validation, B) mesh quality, C) visualization (low
/// quality), D) visualization (high quality).
std::vector<BenchmarkSpec> NeuroscienceBenchmarks();

}  // namespace octopus

#endif  // OCTOPUS_SIM_WORKLOAD_H_
