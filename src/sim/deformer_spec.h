// Copyright 2026 The OCTOPUS Reproduction Authors
// A value description of a deformer — kind, amplitude, seed — that both
// sides of an epoch-parity check can construct the *same* deterministic
// trajectory from: the server binds one to its versioned backend, a test
// or bench binds an identical one to an in-process reference, and the
// per-step positions (hence query results) match bit for bit.
#ifndef OCTOPUS_SIM_DEFORMER_SPEC_H_
#define OCTOPUS_SIM_DEFORMER_SPEC_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "sim/deformer.h"

namespace octopus {

/// Deformation families a versioned backend can drive. Values are wire
/// identifiers (EPOCH_INFO frames) — append only, never renumber.
enum class DeformerKind : uint8_t {
  kNone = 0,        ///< static mesh, no deformer bound
  kRandom = 1,      ///< per-vertex bounded random displacement (adversarial)
  kWave = 2,        ///< convexity-preserving affine "ground shaking"
  kPlasticity = 3,  ///< smooth drifting harmonics (neural plasticity)
};

const char* DeformerKindName(DeformerKind kind);

/// Parses a CLI/wire name ("random", "wave", "plasticity"); false on
/// anything else ("none" is not bindable).
bool ParseDeformerKind(const std::string& name, DeformerKind* out);

/// \brief Everything needed to reproduce a deformer trajectory.
struct DeformerSpec {
  DeformerKind kind = DeformerKind::kNone;
  /// Displacement bound, in mesh units. 0 = derive a safe default from
  /// the mesh at bind time (a fraction of the mean edge length) — fine
  /// for serving, but parity tests should pass an explicit value so both
  /// sides agree without measuring the mesh.
  float amplitude = 0.0f;
  uint64_t seed = 42;
};

/// Instantiates the spec'd deformer (unbound). `amplitude` must be
/// resolved (> 0) by this point; use `MakeDeformerResolving` when the
/// spec may have left it 0. Fails on `kNone`.
Result<std::unique_ptr<Deformer>> MakeDeformer(const DeformerSpec& spec);

/// The one amplitude-resolution rule every backend shares (in-memory
/// and paged servers must agree on the trajectory for the same spec):
/// resolves `spec->amplitude` in place — an unset (0) amplitude becomes
/// `DefaultAmplitude(mean_edge_length)` — then constructs the deformer.
Result<std::unique_ptr<Deformer>> MakeDeformerResolving(
    DeformerSpec* spec, float mean_edge_length);

/// The default amplitude rule for unresolved specs: a conservative
/// fraction of `mean_edge_length` that keeps elements valid for every
/// kind over long horizons.
float DefaultAmplitude(float mean_edge_length);

}  // namespace octopus

#endif  // OCTOPUS_SIM_DEFORMER_SPEC_H_
