// Copyright 2026 The OCTOPUS Reproduction Authors
#include "sim/deformer.h"

#include <algorithm>

namespace octopus {

float EstimateMeanEdgeLength(const TetraMesh& mesh, size_t sample) {
  const size_t v_count = mesh.num_vertices();
  if (v_count == 0) return 0.0f;
  const size_t stride = std::max<size_t>(1, v_count / std::max<size_t>(sample, 1));
  double total = 0.0;
  size_t edges = 0;
  for (size_t v = 0; v < v_count; v += stride) {
    const Vec3& p = mesh.position(static_cast<VertexId>(v));
    for (VertexId n : mesh.neighbors(static_cast<VertexId>(v))) {
      total += Distance(p, mesh.position(n));
      ++edges;
    }
  }
  return edges == 0 ? 0.0f : static_cast<float>(total / edges);
}

}  // namespace octopus
