// Copyright 2026 The OCTOPUS Reproduction Authors
// Simulation-side mesh deformation: at every discrete time step the
// simulation overwrites the positions of (almost) all vertices in place
// (paper Fig. 1(e)). Deformers are the black-box "simulation software" of
// the paper — the monitoring/query side never sees their internals.
#ifndef OCTOPUS_SIM_DEFORMER_H_
#define OCTOPUS_SIM_DEFORMER_H_

#include "mesh/tetra_mesh.h"

namespace octopus {

/// \brief Interface for in-place mesh deformation.
///
/// Implementations displace vertices relative to the *rest* positions
/// captured at `Bind` time, so displacement stays bounded and the mesh
/// stays well-shaped over arbitrarily many steps (a real FEM solver
/// guarantees element validity the same way).
class Deformer {
 public:
  virtual ~Deformer() = default;

  /// Captures the rest state. Must be called once before `ApplyStep`, and
  /// again if the mesh is restructured.
  virtual void Bind(const TetraMesh& mesh) = 0;

  /// Overwrites `mesh->mutable_positions()` with the positions of time
  /// step `step` (1-based). Every vertex may move.
  virtual void ApplyStep(int step, TetraMesh* mesh) = 0;
};

/// Mean edge length of the mesh, estimated from a vertex sample. Deformer
/// amplitudes are set relative to this so elements never invert.
float EstimateMeanEdgeLength(const TetraMesh& mesh, size_t sample = 1024);

}  // namespace octopus

#endif  // OCTOPUS_SIM_DEFORMER_H_
