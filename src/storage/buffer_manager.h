// Copyright 2026 The OCTOPUS Reproduction Authors
// A byte-capped buffer pool over a paged snapshot file: the component
// that makes "how many pages did this query touch?" a first-class,
// measurable quantity (the paper's unit of disk cost, Sec. IV-H1).
//
// Frames are allocated lazily up to the byte cap and NEVER beyond it —
// under memory pressure pages are evicted (LRU or clock, pluggable),
// pinned pages excepted. All operations are thread-safe; per-context
// counters are accumulated through the caller-supplied `PageIOStats`.
#ifndef OCTOPUS_STORAGE_BUFFER_MANAGER_H_
#define OCTOPUS_STORAGE_BUFFER_MANAGER_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/page.h"

namespace octopus::storage {

/// \brief Fixed-capacity page cache with pin/unpin and pluggable
/// eviction.
///
/// Pin discipline: query-path readers (`PagedMeshAccessor`) hold at most
/// one pin at a time and release it before returning, so even a 2-frame
/// pool can serve any number of threads — a `Pin` that finds every frame
/// pinned by other threads blocks until one is released.
class BufferManager {
 public:
  /// Page-replacement policy.
  enum class Eviction {
    kLRU,    ///< evict the least recently accessed unpinned page
    kClock,  ///< second-chance clock sweep over the frames
  };

  struct Options {
    /// Hard byte cap of the pool. Frames of `page_bytes` each are
    /// allocated lazily; their total never exceeds this cap (and the cap
    /// must cover at least 2 pages).
    size_t pool_bytes = 4u << 20;
    Eviction eviction = Eviction::kLRU;
  };

  /// Opens `path` for reading pages of `page_bytes` (pages beyond
  /// `num_pages` are out of range). Fails if the cap is under 2 pages.
  static Result<std::unique_ptr<BufferManager>> Open(
      const std::string& path, size_t page_bytes, uint64_t num_pages,
      const Options& options);

  /// Raises the readable page count (monotonic): a growing file — the
  /// epoch spill sidecar — appends pages and then extends the pool so
  /// they become pinnable. The writer must have flushed the new pages
  /// before calling. Never shrinks.
  void ExtendTo(uint64_t num_pages);

  ~BufferManager();

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  size_t page_bytes() const { return page_bytes_; }
  /// Maximum frames the cap allows.
  size_t max_frames() const { return max_frames_; }
  /// The configured cap.
  size_t PoolCapBytes() const { return options_.pool_bytes; }
  /// Bytes actually allocated for frames so far (the high-water mark:
  /// frames are never freed). Always <= PoolCapBytes().
  size_t AllocatedBytes() const;
  /// Pool-wide totals across every context (hits/misses/evictions).
  PageIOStats TotalStats() const;

  /// Pins `page` resident and returns its frame memory (valid until the
  /// matching `Unpin`). Counts a hit or a miss (plus any eviction) into
  /// `stats`. Blocks if every frame is currently pinned by other
  /// threads. Asserts on out-of-range pages (programming error).
  const std::byte* Pin(PageId page, PageIOStats* stats);

  /// Non-blocking `Pin`: returns null — and counts nothing — when the
  /// page is not resident and no frame can be acquired (every frame
  /// pinned). On success the caller holds a pin exactly as with `Pin`.
  /// This is the only way leases are acquired (paged_mesh.h): a lease
  /// holder must never block inside the pool, so a constrained pool
  /// degrades accessors to the transient-pin path instead of
  /// deadlocking — the 2-page-pool-serves-any-thread-count guarantee
  /// survives leasing.
  const std::byte* TryPin(PageId page, PageIOStats* stats);

  /// Releases one pin on `page` (which must be pinned).
  void Unpin(PageId page);

  /// Convenience read: copies `[offset, offset + len)` of `page` into
  /// `dst` under a transient pin. `offset + len` must lie within the
  /// page.
  void CopyOut(PageId page, size_t offset, size_t len, void* dst,
               PageIOStats* stats);

 private:
  struct Frame {
    std::unique_ptr<std::byte[]> data;
    PageId page = kInvalidPageId;
    uint32_t pins = 0;
    uint64_t lru_tick = 0;  // last-access time (LRU)
    bool referenced = false;  // second-chance bit (clock)
  };

  BufferManager(std::FILE* file, size_t page_bytes, uint64_t num_pages,
                const Options& options);

  /// Returns the index of a frame ready to receive a new page (growing
  /// the pool or evicting), or `max_frames()` when every frame is
  /// currently pinned. Never blocks.
  size_t TryAcquireFrame(PageIOStats* stats) REQUIRES(mu_);
  /// Victim selection among unpinned frames; returns max_frames() when
  /// every frame is pinned.
  size_t PickVictim() REQUIRES(mu_);

  const Options options_;
  const size_t page_bytes_;
  const size_t max_frames_;

  mutable common::Mutex mu_;
  common::CondVar frame_freed_;
  uint64_t num_pages_ GUARDED_BY(mu_);  // grows via ExtendTo
  std::FILE* file_ GUARDED_BY(mu_);     // seek+read are not atomic
  std::vector<Frame> frames_ GUARDED_BY(mu_);
  std::unordered_map<PageId, size_t> page_to_frame_ GUARDED_BY(mu_);
  uint64_t tick_ GUARDED_BY(mu_) = 0;
  size_t clock_hand_ GUARDED_BY(mu_) = 0;
  PageIOStats totals_ GUARDED_BY(mu_);
};

const char* EvictionName(BufferManager::Eviction eviction);

}  // namespace octopus::storage

#endif  // OCTOPUS_STORAGE_BUFFER_MANAGER_H_
