// Copyright 2026 The OCTOPUS Reproduction Authors
#include "storage/snapshot.h"

#include <cstdio>
#include <cstring>
#include <vector>

#include "storage/file_util.h"

namespace octopus::storage {

namespace {

constexpr char kMagic[4] = {'O', 'C', 'T', '2'};

/// Streams entries into fixed-size pages, zero-padding the tail of each
/// section's last page so sections always start on page boundaries.
class PageWriter {
 public:
  PageWriter(std::FILE* file, size_t page_bytes)
      : file_(file), page_(page_bytes, 0) {}

  bool Append(const void* data, size_t entry_bytes) {
    if (fill_ + entry_bytes > page_.size() && !FlushPage()) return false;
    std::memcpy(page_.data() + fill_, data, entry_bytes);
    fill_ += entry_bytes;
    return true;
  }

  /// Pads and writes the current page if it holds any data; the next
  /// `Append` then starts a fresh page.
  bool FinishSection() { return fill_ == 0 || FlushPage(); }

  uint64_t pages_written() const { return pages_written_; }

 private:
  bool FlushPage() {
    std::memset(page_.data() + fill_, 0, page_.size() - fill_);
    if (std::fwrite(page_.data(), 1, page_.size(), file_) != page_.size()) {
      return false;
    }
    fill_ = 0;
    ++pages_written_;
    return true;
  }

  std::FILE* file_;
  std::vector<unsigned char> page_;
  size_t fill_ = 0;
  uint64_t pages_written_ = 0;
};

template <typename T>
bool AppendSection(PageWriter* writer, std::span<const T> entries) {
  for (const T& e : entries) {
    if (!writer->Append(&e, sizeof(T))) return false;
  }
  return writer->FinishSection();
}

Status ValidateGeometry(const SnapshotHeader& h) {
  if (std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad snapshot magic (not an OCT2 file)");
  }
  if (h.version != kSnapshotVersion) {
    return Status::Corruption("unsupported snapshot version " +
                              std::to_string(h.version));
  }
  if (h.page_bytes < kMinPageBytes || h.page_bytes > (1u << 24) ||
      h.page_bytes % sizeof(uint32_t) != 0) {
    return Status::Corruption("implausible page size " +
                              std::to_string(h.page_bytes));
  }
  if (h.num_vertices == 0 || h.num_vertices > (1ull << 33) ||
      h.num_adj_entries > (1ull << 40) ||
      h.num_surface_vertices > h.num_vertices) {
    return Status::Corruption("implausible mesh sizes in snapshot header");
  }
  // Recompute the section layout; the stored start pages must match.
  const uint64_t pos_pages =
      PagesForEntries(h.num_vertices, sizeof(Vec3), h.page_bytes);
  const uint64_t off_pages =
      PagesForEntries(h.num_vertices + 1, sizeof(uint32_t), h.page_bytes);
  const uint64_t adj_pages =
      PagesForEntries(h.num_adj_entries, sizeof(uint32_t), h.page_bytes);
  const uint64_t surf_pages = PagesForEntries(
      h.num_surface_vertices, sizeof(uint32_t), h.page_bytes);
  if (h.positions_start_page != 1 ||
      h.adj_offsets_start_page != 1 + pos_pages ||
      h.adj_start_page != h.adj_offsets_start_page + off_pages ||
      h.surface_start_page != h.adj_start_page + adj_pages ||
      h.num_pages != h.surface_start_page + surf_pages) {
    return Status::Corruption("inconsistent snapshot section layout");
  }
  return Status::OK();
}

}  // namespace

const char* LayoutName(SnapshotLayout layout) {
  switch (layout) {
    case SnapshotLayout::kOriginal:
      return "original";
    case SnapshotLayout::kHilbert:
      return "hilbert";
  }
  return "unknown";
}

uint64_t PagesForEntries(uint64_t entries, size_t entry_bytes,
                         size_t page_bytes) {
  const uint64_t per_page = page_bytes / entry_bytes;
  return (entries + per_page - 1) / per_page;
}

Status WriteSnapshot(std::span<const Vec3> positions,
                     std::span<const uint32_t> adj_offsets,
                     std::span<const VertexId> adj,
                     std::span<const VertexId> surface_vertices,
                     uint64_t num_tets, SnapshotLayout layout,
                     size_t page_bytes, const std::string& path) {
  // Same bounds ReadSnapshotHeader enforces: everything written must be
  // readable back (the upper bound also forecloses uint32 truncation of
  // the header field).
  if (page_bytes < kMinPageBytes || page_bytes > (1u << 24) ||
      page_bytes % sizeof(uint32_t) != 0) {
    return Status::InvalidArgument(
        "page_bytes must be a multiple of 4 in [" +
        std::to_string(kMinPageBytes) + ", " +
        std::to_string(1u << 24) + "]");
  }
  if (positions.empty()) {
    return Status::InvalidArgument("refusing to snapshot an empty mesh");
  }
  if (adj_offsets.size() != positions.size() + 1 ||
      adj_offsets.back() != adj.size()) {
    return Status::InvalidArgument("CSR adjacency arrays are inconsistent");
  }

  SnapshotHeader h{};
  std::memcpy(h.magic, kMagic, sizeof(kMagic));
  h.version = kSnapshotVersion;
  h.page_bytes = static_cast<uint32_t>(page_bytes);
  h.layout = static_cast<uint32_t>(layout);
  h.num_vertices = positions.size();
  h.num_adj_entries = adj.size();
  h.num_surface_vertices = surface_vertices.size();
  h.num_tets = num_tets;
  h.positions_start_page = 1;
  h.adj_offsets_start_page =
      h.positions_start_page +
      PagesForEntries(h.num_vertices, sizeof(Vec3), page_bytes);
  h.adj_start_page =
      h.adj_offsets_start_page +
      PagesForEntries(h.num_vertices + 1, sizeof(uint32_t), page_bytes);
  h.surface_start_page =
      h.adj_start_page +
      PagesForEntries(h.num_adj_entries, sizeof(uint32_t), page_bytes);
  h.num_pages = h.surface_start_page +
                PagesForEntries(h.num_surface_vertices, sizeof(uint32_t),
                                page_bytes);

  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot open for write: " + path);

  PageWriter writer(f.get(), page_bytes);
  const bool ok = writer.Append(&h, sizeof(h)) && writer.FinishSection() &&
                  AppendSection(&writer, positions) &&
                  AppendSection(&writer, adj_offsets) &&
                  AppendSection(&writer, adj) &&
                  AppendSection(&writer, surface_vertices);
  if (!ok || writer.pages_written() != h.num_pages) {
    return Status::IOError("short write: " + path);
  }
  if (std::fflush(f.get()) != 0) {
    return Status::IOError("flush failed: " + path);
  }
  return Status::OK();
}

Result<SnapshotHeader> ReadSnapshotHeader(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open for read: " + path);

  SnapshotHeader h{};
  if (std::fread(&h, 1, sizeof(h), f.get()) != sizeof(h)) {
    return Status::Corruption("truncated snapshot header in " + path);
  }
  OCTOPUS_RETURN_NOT_OK(ValidateGeometry(h));
  if (std::fseek(f.get(), 0, SEEK_END) != 0) {
    return Status::IOError("seek failed: " + path);
  }
  const long size = std::ftell(f.get());
  if (size < 0 || static_cast<uint64_t>(size) != h.FileBytes()) {
    return Status::Corruption(
        "snapshot file size does not match header (" + path + ")");
  }
  return h;
}

}  // namespace octopus::storage
