// Copyright 2026 The OCTOPUS Reproduction Authors
#include "storage/epoch_spill.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstring>
#include <vector>

#include "storage/snapshot.h"

namespace octopus::storage {

namespace {
constexpr char kSpillMagic[4] = {'O', 'C', '2', 'D'};
constexpr uint32_t kSpillVersion = 1;
}  // namespace

Result<std::unique_ptr<EpochSpillFile>> EpochSpillFile::Create(
    const std::string& path, uint32_t page_bytes, size_t pool_bytes) {
  if (page_bytes < kMinPageBytes || page_bytes > (1u << 24)) {
    return Status::InvalidArgument("implausible spill page size " +
                                   std::to_string(page_bytes));
  }
  if (pool_bytes < 2 * static_cast<size_t>(page_bytes)) {
    return Status::InvalidArgument(
        "spill pool must cover at least 2 pages (" +
        std::to_string(2 * static_cast<size_t>(page_bytes)) + " bytes)");
  }
  // Exclusive create ("x"): the sidecar owns its path for the length
  // of the run and deletes it on close, so silently truncating an
  // existing file here — a mistyped --spill-path could name the very
  // snapshot being served — would destroy user data twice over.
  FilePtr file = OpenFile(path, "w+bx");
  if (!file) {
    return Status::IOError(
        "cannot create spill sidecar: " + path +
        " (a file already exists there, or the path is not writable; "
        "the sidecar refuses to overwrite — delete a stale sidecar or "
        "pick another --spill-path)");
  }
  std::vector<unsigned char> header(page_bytes, 0);
  std::memcpy(header.data(), kSpillMagic, sizeof(kSpillMagic));
  std::memcpy(header.data() + 4, &kSpillVersion, sizeof(kSpillVersion));
  std::memcpy(header.data() + 8, &page_bytes, sizeof(page_bytes));
  if (std::fwrite(header.data(), 1, page_bytes, file.get()) != page_bytes ||
      std::fflush(file.get()) != 0) {
    file.reset();
    std::remove(path.c_str());  // never leave a half-written sidecar
    return Status::IOError("cannot write spill header: " + path);
  }
  BufferManager::Options options;
  options.pool_bytes = pool_bytes;
  auto pool = BufferManager::Open(path, page_bytes, /*num_pages=*/1,
                                  options);
  if (!pool.ok()) {
    file.reset();
    std::remove(path.c_str());
    return pool.status();
  }
  return std::unique_ptr<EpochSpillFile>(new EpochSpillFile(
      path, page_bytes, std::move(file),
      std::shared_ptr<BufferManager>(pool.MoveValue())));
}

EpochSpillFile::~EpochSpillFile() {
  file_.reset();
  // The pool (and any spilled overlay still holding it) may outlive us;
  // on POSIX the unlinked file stays readable through its open handle.
  std::remove(path_.c_str());
}

Result<PageId> EpochSpillFile::AppendPage(std::span<const std::byte> bytes) {
  assert(bytes.size() <= page_bytes_ && "entry bytes exceed the page");
  const PageId id = static_cast<PageId>(next_page_);
  if (std::fseek(file_.get(),
                 static_cast<long>(next_page_ * page_bytes_),
                 SEEK_SET) != 0 ||
      std::fwrite(bytes.data(), 1, bytes.size(), file_.get()) !=
          bytes.size()) {
    return Status::IOError("spill append failed: " + path_);
  }
  // Zero-pad to the full page, exactly like the OCT2 writer, so a
  // reloaded page is byte-identical to its resident twin.
  if (bytes.size() < page_bytes_) {
    const std::vector<unsigned char> pad(page_bytes_ - bytes.size(), 0);
    if (std::fwrite(pad.data(), 1, pad.size(), file_.get()) != pad.size()) {
      return Status::IOError("spill pad failed: " + path_);
    }
  }
  ++next_page_;
  return id;
}

Status EpochSpillFile::Sync() {
  if (std::fflush(file_.get()) != 0) {
    return Status::IOError("spill flush failed: " + path_);
  }
  pool_->ExtendTo(next_page_);
  return Status::OK();
}

Result<PageId> EpochSpillFile::AppendPositions(
    std::span<const Vec3> positions) {
  const size_t per_page = page_bytes_ / sizeof(Vec3);
  const PageId first = static_cast<PageId>(next_page_);
  for (size_t done = 0; done < positions.size();) {
    const size_t chunk = std::min(per_page, positions.size() - done);
    auto page_span = std::span<const std::byte>(
        reinterpret_cast<const std::byte*>(positions.data() + done),
        chunk * sizeof(Vec3));
    auto appended = AppendPage(page_span);
    if (!appended.ok()) return appended.status();
    done += chunk;
  }
  return first;
}

Status EpochSpillFile::ReadPositions(PageId first, size_t count, Vec3* out,
                                     PageIOStats* stats) const {
  const size_t per_page = page_bytes_ / sizeof(Vec3);
  PageId page = first;
  for (size_t done = 0; done < count; ++page) {
    const size_t chunk = std::min(per_page, count - done);
    pool_->CopyOut(page, 0, chunk * sizeof(Vec3), out + done, stats);
    done += chunk;
  }
  return Status::OK();
}

}  // namespace octopus::storage
