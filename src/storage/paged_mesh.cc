// Copyright 2026 The OCTOPUS Reproduction Authors
#include "storage/paged_mesh.h"

#include <algorithm>
#include <cstdio>

#include "storage/file_util.h"
#include "storage/mesh_accessor.h"

namespace octopus::storage {

static_assert(MeshAccessor<PagedMeshAccessor>,
              "the paged accessor must satisfy the query-core concept");

namespace {

/// Sequentially reads a paged uint32 section (entries are page-packed,
/// never straddling a boundary).
Status ReadU32Section(std::FILE* f, const SnapshotHeader& h,
                      uint64_t start_page, uint64_t count,
                      std::vector<uint32_t>* out) {
  out->resize(count);
  const size_t per_page = h.U32PerPage();
  uint64_t done = 0;
  for (uint64_t page = start_page; done < count; ++page) {
    const size_t chunk =
        static_cast<size_t>(std::min<uint64_t>(per_page, count - done));
    if (std::fseek(f, static_cast<long>(page * h.page_bytes), SEEK_SET) !=
            0 ||
        std::fread(out->data() + done, sizeof(uint32_t), chunk, f) !=
            chunk) {
      return Status::Corruption("truncated snapshot section");
    }
    done += chunk;
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<PagedMeshStore>> PagedMeshStore::Open(
    const std::string& path, const BufferManager::Options& options) {
  auto header = ReadSnapshotHeader(path);
  if (!header.ok()) return header.status();
  const SnapshotHeader& h = header.Value();

  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open for read: " + path);
  std::vector<VertexId> surface;
  OCTOPUS_RETURN_NOT_OK(ReadU32Section(f.get(), h, h.surface_start_page,
                                       h.num_surface_vertices, &surface));
  for (VertexId v : surface) {
    if (v >= h.num_vertices) {
      return Status::Corruption("surface vertex out of range in " + path);
    }
  }

  auto buffer =
      BufferManager::Open(path, h.page_bytes, h.num_pages, options);
  if (!buffer.ok()) return buffer.status();
  return std::unique_ptr<PagedMeshStore>(new PagedMeshStore(
      h, std::move(surface), buffer.MoveValue()));
}

uint32_t PagedMeshAccessor::ReadU32(uint64_t section_start_page,
                                    uint64_t index) {
  const SnapshotHeader& h = store_->header();
  const size_t per_page = h.U32PerPage();
  uint32_t value = 0;
  store_->buffer_manager()->CopyOut(
      static_cast<PageId>(section_start_page + index / per_page),
      (index % per_page) * sizeof(uint32_t), sizeof(uint32_t), &value,
      stats_);
  return value;
}

std::span<const VertexId> PagedMeshAccessor::neighbors(VertexId v) {
  const SnapshotHeader& h = store_->header();
  const size_t per_page = h.U32PerPage();

  // CSR offsets for v and v+1; one page access when they share a page
  // (the common case), two otherwise.
  uint32_t range[2];
  if (v / per_page == (v + 1) / per_page) {
    store_->buffer_manager()->CopyOut(
        static_cast<PageId>(h.adj_offsets_start_page + v / per_page),
        (v % per_page) * sizeof(uint32_t), 2 * sizeof(uint32_t), range,
        stats_);
  } else {
    range[0] = ReadU32(h.adj_offsets_start_page, v);
    range[1] = ReadU32(h.adj_offsets_start_page, v + 1);
  }

  const size_t degree = range[1] - range[0];
  scratch_.resize(degree);
  // Copy the neighbor list page chunk by page chunk (a list rarely spans
  // more than one adjacency page).
  size_t done = 0;
  while (done < degree) {
    const uint64_t entry = range[0] + done;
    const size_t within = entry % per_page;
    const size_t chunk = std::min(degree - done, per_page - within);
    store_->buffer_manager()->CopyOut(
        static_cast<PageId>(h.adj_start_page + entry / per_page),
        within * sizeof(uint32_t), chunk * sizeof(uint32_t),
        scratch_.data() + done, stats_);
    done += chunk;
  }
  return scratch_;
}

}  // namespace octopus::storage
