// Copyright 2026 The OCTOPUS Reproduction Authors
#include "storage/paged_mesh.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "storage/file_util.h"
#include "storage/mesh_accessor.h"

namespace octopus::storage {

static_assert(MeshAccessor<PagedMeshAccessor>,
              "the paged accessor must satisfy the query-core concept");

namespace {

/// Sequentially reads a paged uint32 section (entries are page-packed,
/// never straddling a boundary).
Status ReadU32Section(std::FILE* f, const SnapshotHeader& h,
                      uint64_t start_page, uint64_t count,
                      std::vector<uint32_t>* out) {
  out->resize(count);
  const size_t per_page = h.U32PerPage();
  uint64_t done = 0;
  for (uint64_t page = start_page; done < count; ++page) {
    const size_t chunk =
        static_cast<size_t>(std::min<uint64_t>(per_page, count - done));
    if (std::fseek(f, static_cast<long>(page * h.page_bytes), SEEK_SET) !=
            0 ||
        std::fread(out->data() + done, sizeof(uint32_t), chunk, f) !=
            chunk) {
      return Status::Corruption("truncated snapshot section");
    }
    done += chunk;
  }
  return Status::OK();
}

/// Gathers the base positions of the surface vertices with one forward
/// pass over the positions section (the id list is ascending, so each
/// page is read at most once, through a single page-sized buffer).
Status GatherSurfacePositions(std::FILE* f, const SnapshotHeader& h,
                              const std::vector<VertexId>& surface,
                              std::vector<Vec3>* out) {
  out->clear();
  out->reserve(surface.size());
  const size_t per_page = h.PositionsPerPage();
  std::vector<Vec3> page(per_page);
  uint64_t loaded = ~0ull;
  for (VertexId v : surface) {
    const uint64_t index = v / per_page;
    if (index != loaded) {
      const uint64_t begin = index * per_page;
      const size_t chunk = static_cast<size_t>(
          std::min<uint64_t>(per_page, h.num_vertices - begin));
      if (std::fseek(f,
                     static_cast<long>((h.positions_start_page + index) *
                                       h.page_bytes),
                     SEEK_SET) != 0 ||
          std::fread(page.data(), sizeof(Vec3), chunk, f) != chunk) {
        return Status::Corruption("truncated positions section");
      }
      loaded = index;
    }
    out->push_back(page[v % per_page]);
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<PagedMeshStore>> PagedMeshStore::Open(
    const std::string& path, const BufferManager::Options& options) {
  auto header = ReadSnapshotHeader(path);
  if (!header.ok()) return header.status();
  const SnapshotHeader& h = header.Value();

  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open for read: " + path);
  std::vector<VertexId> surface;
  OCTOPUS_RETURN_NOT_OK(ReadU32Section(f.get(), h, h.surface_start_page,
                                       h.num_surface_vertices, &surface));
  for (size_t i = 0; i < surface.size(); ++i) {
    if (surface[i] >= h.num_vertices ||
        (i > 0 && surface[i] <= surface[i - 1])) {
      return Status::Corruption(
          "surface vertex list not strictly ascending in-range in " + path);
    }
  }
  std::vector<Vec3> surface_positions;
  OCTOPUS_RETURN_NOT_OK(
      GatherSurfacePositions(f.get(), h, surface, &surface_positions));

  auto buffer =
      BufferManager::Open(path, h.page_bytes, h.num_pages, options);
  if (!buffer.ok()) return buffer.status();
  return std::unique_ptr<PagedMeshStore>(
      new PagedMeshStore(h, std::move(surface),
                         std::move(surface_positions), buffer.MoveValue()));
}

void PagedMeshAccessor::ConfigureLeases(size_t shards) {
  // Per-shard frame budget: with `shards` accessors sharing the pool(s),
  // each may hold at most (frames/shards - 2) lease pins, leaving two
  // frames of per-shard headroom for transient pins. Lease pins alone
  // can then never exhaust the pool, which is what makes "never block
  // while leasing" a liveness guarantee and not just a policy.
  size_t frames = store_->buffer_manager()->max_frames();
  if (overlay_ != nullptr && overlay_->spill_pool() != nullptr) {
    frames = std::min(frames, overlay_->spill_pool()->max_frames());
  }
  const size_t per_shard = frames / std::max<size_t>(shards, 1);
  lease_cap_ =
      per_shard > 2 ? std::min(kDefaultLeaseCap, per_shard - 2) : 0;
  zero_copy_ = lease_cap_ >= kMinLeasesForZeroCopy;
  if (lease_cap_ > 0 && slots_.empty()) {
    size_t n = 8;
    while (n < 2 * kDefaultLeaseCap) n <<= 1;
    slots_.assign(n, Lease{});
    slot_mask_ = n - 1;
  }
}

void PagedMeshAccessor::BeginBatch(const PositionOverlay* overlay,
                                   size_t shards) {
  EndBatch();
  overlay_ = overlay;
  ConfigureLeases(shards);
  if (overlay_ != nullptr) PatchProbePositions();
}

void PagedMeshAccessor::PatchProbePositions() {
  const std::vector<Vec3>& base = store_->surface_positions();
  const std::vector<VertexId>& ids = store_->surface_vertices();
  const size_t per_page = store_->header().PositionsPerPage();

  // Revert last batch's patches (the previous overlay's pages need not
  // be this one's) before applying the new delta.
  if (!patched_probe_.empty()) {
    for (const uint32_t r : patched_ranks_) patched_probe_[r] = base[r];
  }
  patched_ranks_.clear();

  bool patched = false;
  const size_t num_slots = overlay_->num_page_slots();
  for (uint64_t p = 0; p < num_slots; ++p) {
    const std::byte* resident = overlay_->Lookup(p);
    const PageId spilled =
        resident != nullptr ? kInvalidPageId : overlay_->spilled_id(p);
    if (resident == nullptr && spilled == kInvalidPageId) continue;
    // Surface ids ascend, so a page's surface vertices occupy one
    // contiguous rank range.
    const auto lo = std::lower_bound(ids.begin(), ids.end(),
                                     static_cast<VertexId>(p * per_page));
    const auto hi =
        std::lower_bound(lo, ids.end(),
                         static_cast<VertexId>((p + 1) * per_page));
    if (lo == hi) continue;
    if (!patched) {
      if (patched_probe_.empty()) {
        patched_probe_.assign(base.begin(), base.end());
      }
      patched = true;
    }
    if (resident != nullptr) {
      // Price the page once per batch, exactly as the crawl's first
      // touch through `ReadOverlay` would; further reads (probe or
      // crawl) of its bytes are then free re-reads.
      if (lease_cap_ == 0) {
        ++stats_->page_hits;
      } else {
        if (overlay_touched_.size() < num_slots) {
          overlay_touched_.resize(num_slots, 0);
        }
        if (overlay_touched_[p] == 0) {
          overlay_touched_[p] = 1;
          ++stats_->page_hits;
          ++stats_->pages_leased;
          ++stats_->pages_distinct;
        }
      }
    }
    for (auto it = lo; it != hi; ++it) {
      const uint32_t rank = static_cast<uint32_t>(it - ids.begin());
      const VertexId v = *it;
      const size_t offset = (v - p * per_page) * sizeof(Vec3);
      if (resident != nullptr) {
        std::memcpy(&patched_probe_[rank], resident + offset,
                    sizeof(Vec3));
      } else {
        ReadPooled(overlay_->spill_pool(), kTagSpill, spilled, offset,
                   sizeof(Vec3), &patched_probe_[rank]);
      }
      patched_ranks_.push_back(rank);
    }
  }
  probe_positions_ =
      patched ? patched_probe_.data() : base.data();
}

void PagedMeshAccessor::EndBatch() {
  span_pool_ = nullptr;
  span_page_ = kInvalidPageId;
  ReleaseLeases(false);
  degraded_ = false;
  last_prefetch_page_ = ~0ull;
  probe_positions_ = store_->surface_positions().data();
  distinct_.clear();
  std::fill(overlay_touched_.begin(), overlay_touched_.end(),
            static_cast<uint8_t>(0));
}

PagedMeshAccessor::Lease* PagedMeshAccessor::FindLease(BufferManager* pool,
                                                       PageId page) {
  if (count_ == 0) return nullptr;
  size_t i = HashSlot(pool, page);
  while (slots_[i].data != nullptr) {
    if (slots_[i].pool == pool && slots_[i].page == page) {
      return &slots_[i];
    }
    i = (i + 1) & slot_mask_;
  }
  return nullptr;
}

const std::byte* PagedMeshAccessor::AcquireLease(BufferManager* pool,
                                                 uint8_t tag, PageId page,
                                                 bool speculative) {
  const std::byte* data = pool->TryPin(page, stats_);
  if (data == nullptr) {
    // Pool pressure (every frame pinned). Degrade to transient pins for
    // the rest of the batch rather than ever blocking while holding
    // leases; a speculative prefetch is simply dropped.
    if (!speculative) {
      degraded_ = true;
      stats_->lease_revocations += count_;
      ReleaseLeases(true);
      // Leases that survived the release (the protected span's) were
      // not revoked after all.
      stats_->lease_revocations -= count_;
    }
    return nullptr;
  }
  ++stats_->pages_leased;
  NoteDistinct(tag, page);
  InsertLease(pool, page, data);
  return data;
}

void PagedMeshAccessor::InsertLease(BufferManager* pool, PageId page,
                                    const std::byte* data) {
  if (count_ == lease_cap_) RevokeLRU();
  size_t i = HashSlot(pool, page);
  while (slots_[i].data != nullptr) i = (i + 1) & slot_mask_;
  slots_[i] = Lease{data, pool, page, ++tick_};
  ++count_;
  mru_ = &slots_[i];
}

void PagedMeshAccessor::RevokeLRU() {
  ++stats_->lease_revocations;
  // Revocation (and the backward-shift erase below) can move or drop any
  // slot; both MRU caches may alias one — reset them.
  mru_ = nullptr;
  pos_mru_index_ = ~0ull;
  pos_mru_data_ = nullptr;
  size_t victim = slots_.size();
  uint64_t oldest = ~0ull;
  for (size_t i = 0; i < slots_.size(); ++i) {
    const Lease& l = slots_[i];
    if (l.data == nullptr) continue;
    if (HasSpan() && l.pool == span_pool_ && l.page == span_page_) {
      continue;  // the outstanding span's page is revocation-protected
    }
    if (l.tick < oldest) {
      oldest = l.tick;
      victim = i;
    }
  }
  assert(victim != slots_.size() &&
         "lease cap must exceed the (single) protected span");
  slots_[victim].pool->Unpin(slots_[victim].page);
  EraseSlot(victim);
  --count_;
}

void PagedMeshAccessor::EraseSlot(size_t hole) {
  // Linear-probing backward shift: pull displaced entries over the hole
  // so probe chains stay unbroken.
  size_t j = hole;
  for (;;) {
    j = (j + 1) & slot_mask_;
    if (slots_[j].data == nullptr) break;
    const size_t home = HashSlot(slots_[j].pool, slots_[j].page);
    if (((j - home) & slot_mask_) >= ((j - hole) & slot_mask_)) {
      slots_[hole] = slots_[j];
      hole = j;
    }
  }
  slots_[hole] = Lease{};
}

void PagedMeshAccessor::ReleaseLeases(bool keep_span) {
  mru_ = nullptr;
  pos_mru_index_ = ~0ull;
  pos_mru_data_ = nullptr;
  if (count_ == 0) return;
  Lease saved{};
  for (Lease& l : slots_) {
    if (l.data == nullptr) continue;
    if (keep_span && HasSpan() && l.pool == span_pool_ &&
        l.page == span_page_) {
      saved = l;  // keep this pin; the caller's span aliases its frame
    } else {
      l.pool->Unpin(l.page);
    }
    l = Lease{};
  }
  count_ = 0;
  if (saved.data != nullptr) InsertLease(saved.pool, saved.page, saved.data);
}

void PagedMeshAccessor::ReadPooled(BufferManager* pool, uint8_t tag,
                                   PageId page, size_t offset, size_t len,
                                   void* dst) {
  if (lease_cap_ != 0 && !degraded_) {
    if (Lease* l = mru_; l != nullptr && l->page == page &&
                         l->pool == pool) {
      l->tick = ++tick_;
      ++stats_->lease_hits;
      std::memcpy(dst, l->data + offset, len);
      return;
    }
    if (Lease* l = FindLease(pool, page)) {
      l->tick = ++tick_;
      ++stats_->lease_hits;
      mru_ = l;
      std::memcpy(dst, l->data + offset, len);
      return;
    }
    if (const std::byte* data = AcquireLease(pool, tag, page, false)) {
      std::memcpy(dst, data + offset, len);
      return;
    }
  }
  TransientRead(pool, tag, page, offset, len, dst);
}

void PagedMeshAccessor::TransientRead(BufferManager* pool, uint8_t tag,
                                      PageId page, size_t offset,
                                      size_t len, void* dst) {
  if (lease_cap_ == 0) {
    // Leasing disabled (tiny pool): the pre-lease behavior exactly.
    pool->CopyOut(page, offset, len, dst, stats_);
    return;
  }
  NoteDistinct(tag, page);
  if (const std::byte* data = pool->TryPin(page, stats_)) {
    std::memcpy(dst, data + offset, len);
    pool->Unpin(page);
    return;
  }
  // Must block for a frame — never while holding leases (blocked
  // threads pinning frames could starve each other on a tiny pool). At
  // most the zero-copy span's pin survives: zero-copy implies a
  // per-shard budget of >= kMinLeasesForZeroCopy + 2 frames, so span
  // pins total strictly fewer than the pool's frames and some running
  // thread always holds a releasable pin — progress is guaranteed.
  ReleaseLeases(true);
  pool->CopyOut(page, offset, len, dst, stats_);
}

bool PagedMeshAccessor::ReadOverlay(uint64_t index, size_t offset,
                                    size_t len, void* dst) {
  if (const std::byte* resident = overlay_->Lookup(index)) {
    if (lease_cap_ == 0) {
      // Pre-lease pricing: every resident-delta read is a pool hit.
      ++stats_->page_hits;
    } else {
      if (overlay_touched_.size() < overlay_->num_page_slots()) {
        overlay_touched_.resize(overlay_->num_page_slots(), 0);
      }
      if (overlay_touched_[index] == 0) {
        overlay_touched_[index] = 1;
        ++stats_->page_hits;
        ++stats_->pages_leased;
        ++stats_->pages_distinct;
      } else {
        ++stats_->lease_hits;
      }
      // Resident delta bytes are stable for the batch: position()'s MRU
      // may serve this page directly from them.
      pos_mru_index_ = index;
      pos_mru_data_ = resident;
    }
    std::memcpy(dst, resident + offset, len);
    return true;
  }
  const PageId spilled = overlay_->spilled_id(index);
  if (spilled != kInvalidPageId) {
    ReadPooled(overlay_->spill_pool(), kTagSpill, spilled, offset, len,
               dst);
    return true;
  }
  return false;
}

void PagedMeshAccessor::PrefetchPosition(VertexId v) {
  if (lease_cap_ == 0 || degraded_) return;
  const SnapshotHeader& h = store_->header();
  const uint64_t page_index = pos_div_.Div(v);
  if (page_index == last_prefetch_page_) return;
  last_prefetch_page_ = page_index;
  if (overlay_ != nullptr &&
      (overlay_->Lookup(page_index) != nullptr ||
       overlay_->spilled_id(page_index) != kInvalidPageId)) {
    return;  // resident delta is already memory; spills are not speculated
  }
  if (count_ >= lease_cap_) return;  // never revoke for speculation
  BufferManager* pool = store_->buffer_manager();
  const PageId page =
      static_cast<PageId>(h.positions_start_page + page_index);
  if (FindLease(pool, page) != nullptr) return;
  AcquireLease(pool, kTagBase, page, /*speculative=*/true);
}

uint32_t PagedMeshAccessor::ReadU32(uint64_t section_start_page,
                                    uint64_t index) {
  // Section entry counts fit 32 bits (CSR offsets are u32), so the
  // reciprocal divide is exact.
  const uint32_t n = static_cast<uint32_t>(index);
  const uint32_t page_index = u32_div_.Div(n);
  uint32_t value = 0;
  ReadPooled(store_->buffer_manager(), kTagBase,
             static_cast<PageId>(section_start_page + page_index),
             (n - page_index * u32_div_.divisor()) * sizeof(uint32_t),
             sizeof(uint32_t), &value);
  return value;
}

std::span<const VertexId> PagedMeshAccessor::neighbors(VertexId v) {
  const SnapshotHeader& h = store_->header();
  const size_t per_page = h.U32PerPage();
  // This call invalidates the previous span (accessor contract), so its
  // lease loses revocation protection up front.
  span_pool_ = nullptr;
  span_page_ = kInvalidPageId;

  // CSR offsets for v and v+1; one page access when they share a page
  // (the common case), two otherwise.
  uint32_t range[2];
  const uint32_t offsets_page = u32_div_.Div(v);
  if (offsets_page == u32_div_.Div(v + 1)) {
    ReadPooled(store_->buffer_manager(), kTagBase,
               static_cast<PageId>(h.adj_offsets_start_page + offsets_page),
               (v - offsets_page * u32_div_.divisor()) * sizeof(uint32_t),
               2 * sizeof(uint32_t), range);
  } else {
    range[0] = ReadU32(h.adj_offsets_start_page, v);
    range[1] = ReadU32(h.adj_offsets_start_page, v + 1);
  }

  const size_t degree = range[1] - range[0];
  if (zero_copy_ && !degraded_ && degree != 0) {
    const uint32_t entry = range[0];
    const uint32_t entry_page = u32_div_.Div(entry);
    const size_t within = entry - entry_page * u32_div_.divisor();
    if (within + degree <= per_page) {
      // The whole run lives on one adjacency page: hand out a span
      // aliasing the leased frame bytes directly — no memcpy. The
      // lease is revocation-protected until the next neighbors() call
      // (position() calls never invalidate the span).
      BufferManager* pool = store_->buffer_manager();
      const PageId page =
          static_cast<PageId>(h.adj_start_page + entry_page);
      const std::byte* data = nullptr;
      if (Lease* l = FindLease(pool, page)) {
        l->tick = ++tick_;
        ++stats_->lease_hits;
        mru_ = l;
        data = l->data;
      } else {
        data = AcquireLease(pool, kTagBase, page, false);
      }
      if (data != nullptr) {
        span_pool_ = pool;
        span_page_ = page;
        return {reinterpret_cast<const VertexId*>(
                    data + within * sizeof(uint32_t)),
                degree};
      }
    }
  }

  scratch_.resize(degree);
  // Copy the neighbor list page chunk by page chunk (a list rarely spans
  // more than one adjacency page).
  size_t done = 0;
  while (done < degree) {
    const uint64_t entry = range[0] + done;
    const size_t within = entry % per_page;
    const size_t chunk = std::min(degree - done, per_page - within);
    ReadPooled(store_->buffer_manager(), kTagBase,
               static_cast<PageId>(h.adj_start_page + entry / per_page),
               within * sizeof(uint32_t), chunk * sizeof(uint32_t),
               scratch_.data() + done);
    done += chunk;
  }
  return scratch_;
}

}  // namespace octopus::storage
