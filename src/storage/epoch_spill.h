// Copyright 2026 The OCTOPUS Reproduction Authors
// The epoch spill sidecar (`.oct2d`): an append-only paged file that
// holds delta-overlay pages (and, for in-memory backends, whole
// position arrays) of epochs evicted from the retention window. The
// base OCT2 snapshot stays the step-0 source of truth and is never
// written; the sidecar is a cache of *history* — created per serving
// run, deleted on close — whose pages are read back on demand through
// a byte-capped `BufferManager`, so reloading a spilled epoch costs
// measurable page I/O instead of resident memory.
//
// Layout: page 0 is a small header ("OC2D", version, page size);
// spilled pages are appended after it, each zero-padded to the page
// size exactly as the OCT2 writer would emit it, so a reloaded page is
// byte-identical to its once-resident overlay twin.
#ifndef OCTOPUS_STORAGE_EPOCH_SPILL_H_
#define OCTOPUS_STORAGE_EPOCH_SPILL_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "common/status.h"
#include "common/vec3.h"
#include "storage/buffer_manager.h"
#include "storage/file_util.h"
#include "storage/page.h"

namespace octopus::storage {

/// \brief Append-only spill file + the read pool over it.
///
/// One writer (the thread publishing epochs — `AppendPage`/`Sync`), any
/// number of readers through `pool()` (thread-safe like every
/// `BufferManager`). Appended pages become readable only after `Sync`
/// extends the pool past them; the store calls `Sync` once per spilled
/// epoch, before publishing the spill-backed twin.
class EpochSpillFile {
 public:
  /// Creates (truncating) `path` with a header page. `pool_bytes` caps
  /// the reload pool (>= 2 pages).
  static Result<std::unique_ptr<EpochSpillFile>> Create(
      const std::string& path, uint32_t page_bytes, size_t pool_bytes);

  /// Closes and deletes the sidecar: it holds no data that outlives the
  /// serving run (history is rebuilt from step 0 next time).
  ~EpochSpillFile();

  EpochSpillFile(const EpochSpillFile&) = delete;
  EpochSpillFile& operator=(const EpochSpillFile&) = delete;

  /// Appends `bytes` (at most one page; shorter spans are zero-padded
  /// to the page size, writer-identical) and returns the sidecar page
  /// id it now lives at. Not readable until the next `Sync`.
  Result<PageId> AppendPage(std::span<const std::byte> bytes);

  /// Flushes appended pages and extends the read pool over them.
  Status Sync();

  /// Appends a whole position array (packed per page like an OCT2
  /// positions section) and returns the first sidecar page id. Used by
  /// the in-memory backend, whose epochs are full arrays, not deltas.
  Result<PageId> AppendPositions(std::span<const Vec3> positions);

  /// Reads back `count` positions starting at sidecar page `first`
  /// through the pool (page I/O lands in `stats` — the reload cost the
  /// epoch-history bench prices).
  Status ReadPositions(PageId first, size_t count, Vec3* out,
                       PageIOStats* stats) const;

  const std::shared_ptr<BufferManager>& pool() const { return pool_; }
  uint32_t page_bytes() const { return page_bytes_; }
  const std::string& path() const { return path_; }
  /// Pages appended so far (excluding the header page).
  uint64_t pages_written() const { return next_page_ - 1; }
  uint64_t bytes_written() const {
    return pages_written() * page_bytes_;
  }

 private:
  EpochSpillFile(std::string path, uint32_t page_bytes, FilePtr file,
                 std::shared_ptr<BufferManager> pool)
      : path_(std::move(path)),
        page_bytes_(page_bytes),
        file_(std::move(file)),
        pool_(std::move(pool)) {}

  std::string path_;
  uint32_t page_bytes_;
  FilePtr file_;  // append handle; the pool holds its own read handle
  std::shared_ptr<BufferManager> pool_;
  uint64_t next_page_ = 1;  // page 0 is the header
};

}  // namespace octopus::storage

#endif  // OCTOPUS_STORAGE_EPOCH_SPILL_H_
