// Copyright 2026 The OCTOPUS Reproduction Authors
#include "storage/delta_overlay.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <utility>

namespace octopus::storage {

size_t PositionOverlay::resident_bytes() const {
  size_t bytes = 0;
  for (const auto& page : pages_) {
    if (page != nullptr) bytes += page->size();
  }
  return bytes;
}

bool PositionOverlay::ReadBytes(uint64_t index, size_t offset, size_t len,
                                void* dst, PageIOStats* stats) const {
  if (index < pages_.size() && pages_[index] != nullptr) {
    const PageBytes& page = *pages_[index];
    assert(offset + len <= page.size() &&
           "read past the page's entry bytes");
    std::memcpy(dst, page.data() + offset, len);
    // A resident delta page is memory by construction: count it as a
    // pool hit so hits + misses still equal accesses.
    ++stats->page_hits;
    return true;
  }
  if (index < spilled_.size() && spilled_[index] != kInvalidPageId) {
    spill_pool_->CopyOut(spilled_[index], offset, len, dst, stats);
    return true;
  }
  return false;
}

std::shared_ptr<const PositionOverlay> PositionOverlay::BuildNext(
    const SnapshotHeader& header, const PositionOverlay* prev,
    std::span<const Vec3> old_positions,
    std::span<const Vec3> new_positions, size_t* pages_rewritten) {
  assert(old_positions.size() == header.num_vertices &&
         new_positions.size() == header.num_vertices &&
         "position arrays must match the snapshot");
  const size_t per_page = header.PositionsPerPage();
  const uint64_t num_pages =
      PagesForEntries(header.num_vertices, sizeof(Vec3), header.page_bytes);

  auto overlay = std::make_shared<PositionOverlay>();
  overlay->pages_.resize(num_pages);
  size_t rewritten = 0;
  for (uint64_t page = 0; page < num_pages; ++page) {
    const size_t begin = page * per_page;
    // The tail page holds fewer entries; compare (and store) only the
    // real entry bytes — the zero pad the OCT2 writer emits past them
    // is implicit, never garbage, so an unchanged tail page is never
    // spuriously rewritten.
    const size_t count =
        std::min<size_t>(per_page, header.num_vertices - begin);
    const bool changed =
        std::memcmp(old_positions.data() + begin,
                    new_positions.data() + begin, count * sizeof(Vec3)) != 0;
    if (!changed) {
      // Share the previous epoch's bytes — resident or spilled — (no
      // entry at all = base file still valid).
      if (prev != nullptr && page < prev->pages_.size() &&
          prev->pages_[page] != nullptr) {
        overlay->pages_[page] = prev->pages_[page];
      } else if (prev != nullptr && page < prev->spilled_.size() &&
                 prev->spilled_[page] != kInvalidPageId) {
        if (overlay->spilled_.empty()) {
          overlay->spilled_.assign(num_pages, kInvalidPageId);
          overlay->spill_pool_ = prev->spill_pool_;
        }
        overlay->spilled_[page] = prev->spilled_[page];
      }
      continue;
    }
    // Serialize exactly like the OCT2 writer: packed entries (the zero
    // tail materializes only when the page is spilled to disk).
    auto bytes = std::make_shared<PageBytes>(count * sizeof(Vec3));
    std::memcpy(bytes->data(), new_positions.data() + begin,
                count * sizeof(Vec3));
    overlay->pages_[page] = std::move(bytes);
    ++rewritten;
  }
  if (pages_rewritten != nullptr) *pages_rewritten = rewritten;
  return overlay;
}

std::shared_ptr<const PositionOverlay> PositionOverlay::SpilledTwin(
    [[maybe_unused]] const PositionOverlay& src,
    std::vector<PageId> sidecar_ids, std::shared_ptr<BufferManager> pool) {
  assert(sidecar_ids.size() ==
             std::max(src.pages_.size(), src.spilled_.size()) &&
         "one sidecar id slot per overlay page");
  auto overlay = std::make_shared<PositionOverlay>();
  overlay->pages_.resize(sidecar_ids.size());  // all null: nothing resident
  overlay->spilled_ = std::move(sidecar_ids);
  overlay->spill_pool_ = std::move(pool);
  return overlay;
}

}  // namespace octopus::storage
