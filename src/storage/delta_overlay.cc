// Copyright 2026 The OCTOPUS Reproduction Authors
#include "storage/delta_overlay.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace octopus::storage {

size_t PositionOverlay::resident_bytes() const {
  size_t bytes = 0;
  for (const auto& page : pages_) {
    if (page != nullptr) bytes += page->size();
  }
  return bytes;
}

std::shared_ptr<const PositionOverlay> PositionOverlay::BuildNext(
    const SnapshotHeader& header, const PositionOverlay* prev,
    std::span<const Vec3> old_positions,
    std::span<const Vec3> new_positions, size_t* pages_rewritten) {
  assert(old_positions.size() == header.num_vertices &&
         new_positions.size() == header.num_vertices &&
         "position arrays must match the snapshot");
  const size_t per_page = header.PositionsPerPage();
  const uint64_t num_pages =
      PagesForEntries(header.num_vertices, sizeof(Vec3), header.page_bytes);

  auto overlay = std::make_shared<PositionOverlay>();
  overlay->pages_.resize(num_pages);
  size_t rewritten = 0;
  for (uint64_t page = 0; page < num_pages; ++page) {
    const size_t begin = page * per_page;
    const size_t count =
        std::min<size_t>(per_page, header.num_vertices - begin);
    const bool changed =
        std::memcmp(old_positions.data() + begin,
                    new_positions.data() + begin, count * sizeof(Vec3)) != 0;
    if (!changed) {
      // Share the previous epoch's bytes (null = base file still valid).
      if (prev != nullptr && page < prev->pages_.size()) {
        overlay->pages_[page] = prev->pages_[page];
      }
      continue;
    }
    // Serialize exactly like the OCT2 writer: packed entries, zero tail.
    auto bytes = std::make_shared<PageBytes>(header.page_bytes);
    std::memcpy(bytes->data(), new_positions.data() + begin,
                count * sizeof(Vec3));
    overlay->pages_[page] = std::move(bytes);
    ++rewritten;
  }
  if (pages_rewritten != nullptr) *pages_rewritten = rewritten;
  return overlay;
}

}  // namespace octopus::storage
