// Copyright 2026 The OCTOPUS Reproduction Authors
// Shared RAII wrapper for C stdio handles used by the binary I/O code
// (mesh files, snapshots, the buffer manager).
#ifndef OCTOPUS_STORAGE_FILE_UTIL_H_
#define OCTOPUS_STORAGE_FILE_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>

namespace octopus::storage {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};

/// Owning `std::FILE*`; closes on destruction.
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

inline FilePtr OpenFile(const std::string& path, const char* mode) {
  return FilePtr(std::fopen(path.c_str(), mode));
}

}  // namespace octopus::storage

#endif  // OCTOPUS_STORAGE_FILE_UTIL_H_
