// Copyright 2026 The OCTOPUS Reproduction Authors
// The OCT2 paged snapshot format: a query-optimized on-disk layout of a
// mesh's vertex positions and CSR adjacency in fixed-size pages, plus the
// surface vertex list the OCTOPUS probe needs. With the Hilbert layout
// (paper Sec. IV-H1) the arrays are clustered so the crawl's random
// adjacency accesses land on few pages — the data organization the paper
// uses to make disk-resident crawling cheap.
//
// File layout (little endian, `page_bytes`-sized pages):
//   page 0:            SnapshotHeader, zero-padded
//   positions section: Vec3 per vertex, entries never straddle a page
//   adj-offsets section: uint32 per vertex + 1 (CSR offsets)
//   adjacency section: uint32 neighbor ids, CSR-concatenated
//   surface section:   uint32 surface vertex ids, ascending
// Every section starts on a page boundary and its last page is
// zero-padded. Tetrahedra are NOT stored: a snapshot is a derived query
// artifact (the OCT1 mesh file remains the source of truth), and the
// query paths only ever touch positions, adjacency and the surface.
#ifndef OCTOPUS_STORAGE_SNAPSHOT_H_
#define OCTOPUS_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <span>
#include <string>

#include "common/status.h"
#include "common/vec3.h"
#include "mesh/types.h"
#include "storage/page.h"

namespace octopus::storage {

/// Vertex ordering a snapshot was written in.
enum class SnapshotLayout : uint32_t {
  kOriginal = 0,  ///< ids as they arrived (arbitrary order)
  kHilbert = 1,   ///< ids sorted by 3D Hilbert index of the position
};

const char* LayoutName(SnapshotLayout layout);

/// \brief Knobs of `WriteSnapshot` (and `mesh_io`'s `SaveSnapshot`).
struct SnapshotOptions {
  size_t page_bytes = kDefaultPageBytes;
  SnapshotLayout layout = SnapshotLayout::kOriginal;
};

/// Smallest supported page: must hold the superblock and at least one
/// position entry.
inline constexpr size_t kMinPageBytes = 128;

/// \brief The superblock, stored at the start of page 0.
struct SnapshotHeader {
  char magic[4];         ///< "OCT2"
  uint32_t version;      ///< format version, currently 1
  uint32_t page_bytes;   ///< page size this file was written with
  uint32_t layout;       ///< SnapshotLayout
  uint64_t num_vertices;
  uint64_t num_adj_entries;      ///< total CSR adjacency entries (2E)
  uint64_t num_surface_vertices;
  uint64_t num_tets;             ///< provenance only; tets are not stored
  uint64_t positions_start_page;
  uint64_t adj_offsets_start_page;
  uint64_t adj_start_page;
  uint64_t surface_start_page;
  uint64_t num_pages;    ///< total pages incl. the superblock

  size_t PositionsPerPage() const { return page_bytes / sizeof(Vec3); }
  size_t U32PerPage() const { return page_bytes / sizeof(uint32_t); }
  size_t FileBytes() const { return num_pages * page_bytes; }
};

static_assert(sizeof(SnapshotHeader) <= kMinPageBytes,
              "superblock must fit the smallest page");

inline constexpr uint32_t kSnapshotVersion = 1;

/// Number of `page_bytes` pages needed for `entries` entries of
/// `entry_bytes` each, entries never straddling a page boundary.
uint64_t PagesForEntries(uint64_t entries, size_t entry_bytes,
                         size_t page_bytes);

/// Writes an OCT2 snapshot from raw arrays. `adj_offsets` must have
/// `positions.size() + 1` entries with `adj_offsets.back() == adj.size()`;
/// `surface_vertices` ascending. `num_tets` is recorded for provenance.
/// The arrays are written as given — apply a Hilbert permutation first
/// (see `mesh_io`'s `SaveSnapshot`) and pass `layout = kHilbert` to
/// record it.
Status WriteSnapshot(std::span<const Vec3> positions,
                     std::span<const uint32_t> adj_offsets,
                     std::span<const VertexId> adj,
                     std::span<const VertexId> surface_vertices,
                     uint64_t num_tets, SnapshotLayout layout,
                     size_t page_bytes, const std::string& path);

/// Reads and validates the superblock (magic, version, page geometry,
/// section layout, file size). Cheap: touches only page 0 and the file
/// size, never the data pages.
Result<SnapshotHeader> ReadSnapshotHeader(const std::string& path);

}  // namespace octopus::storage

#endif  // OCTOPUS_STORAGE_SNAPSHOT_H_
