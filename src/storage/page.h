// Copyright 2026 The OCTOPUS Reproduction Authors
// Fundamental types of the out-of-core storage engine: page identifiers
// and the per-context page-I/O counters. The paper (Sec. IV-H1) evaluates
// OCTOPUS on disk-resident meshes where the cost that matters is *page
// accesses*; everything in storage/ exists to make that cost measurable.
#ifndef OCTOPUS_STORAGE_PAGE_H_
#define OCTOPUS_STORAGE_PAGE_H_

#include <cstddef>
#include <cstdint>
#include <limits>

namespace octopus::storage {

/// Index of a fixed-size page within a snapshot file. Page 0 is the
/// superblock; data sections start at page boundaries after it.
using PageId = uint32_t;

inline constexpr PageId kInvalidPageId = std::numeric_limits<PageId>::max();

/// Default snapshot page size. 4 KiB matches the common filesystem block
/// size; tests use smaller pages to force heavy paging on small meshes.
inline constexpr size_t kDefaultPageBytes = 4096;

/// \brief Per-context page-I/O counters.
///
/// Each `engine::ExecutionContext` accumulates its own instance (inside
/// `PhaseStats`), merged into the index-level aggregate in deterministic
/// shard order at batch end, exactly like the phase counters. The values
/// themselves are deterministic for single-threaded execution; with a
/// shared buffer pool and multiple threads the hit/miss split depends on
/// interleaving (the totals still balance: hits + misses = accesses).
struct PageIOStats {
  size_t page_hits = 0;       ///< accesses served from the buffer pool
  size_t page_misses = 0;     ///< accesses that had to read from disk
  size_t page_evictions = 0;  ///< resident pages dropped to make room

  void Reset() { *this = PageIOStats{}; }

  void Merge(const PageIOStats& other) {
    page_hits += other.page_hits;
    page_misses += other.page_misses;
    page_evictions += other.page_evictions;
  }

  size_t PageAccesses() const { return page_hits + page_misses; }
};

}  // namespace octopus::storage

#endif  // OCTOPUS_STORAGE_PAGE_H_
