// Copyright 2026 The OCTOPUS Reproduction Authors
// Fundamental types of the out-of-core storage engine: page identifiers
// and the per-context page-I/O counters. The paper (Sec. IV-H1) evaluates
// OCTOPUS on disk-resident meshes where the cost that matters is *page
// accesses*; everything in storage/ exists to make that cost measurable.
#ifndef OCTOPUS_STORAGE_PAGE_H_
#define OCTOPUS_STORAGE_PAGE_H_

#include <cstddef>
#include <cstdint>
#include <limits>

namespace octopus::storage {

/// Index of a fixed-size page within a snapshot file. Page 0 is the
/// superblock; data sections start at page boundaries after it.
using PageId = uint32_t;

inline constexpr PageId kInvalidPageId = std::numeric_limits<PageId>::max();

/// Default snapshot page size. 4 KiB matches the common filesystem block
/// size; tests use smaller pages to force heavy paging on small meshes.
inline constexpr size_t kDefaultPageBytes = 4096;

/// \brief Per-context page-I/O counters.
///
/// Each `engine::ExecutionContext` accumulates its own instance (inside
/// `PhaseStats`), merged into the index-level aggregate in deterministic
/// shard order at batch end, exactly like the phase counters. The values
/// themselves are deterministic for single-threaded execution; with a
/// shared buffer pool and multiple threads the hit/miss split depends on
/// interleaving (the totals still balance: hits + misses = accesses).
///
/// With leased page references (see storage/paged_mesh.h) a page is
/// priced into hits/misses once when its lease is acquired; every later
/// read through the held lease counts only `lease_hits`. `PageAccesses()`
/// therefore approximates *distinct pages touched* per batch instead of
/// raw read calls; `pages_distinct` records the exact per-shard distinct
/// count (summed over shards on merge, so overlapping shards may count a
/// page once each).
struct PageIOStats {
  size_t page_hits = 0;       ///< accesses served from the buffer pool
  size_t page_misses = 0;     ///< accesses that had to read from disk
  size_t page_evictions = 0;  ///< resident pages dropped to make room
  size_t lease_hits = 0;      ///< reads served from an already-held lease
  size_t pages_leased = 0;    ///< lease acquisitions (first touch per batch)
  size_t pages_distinct = 0;  ///< distinct pages touched (0 if leasing off)
  /// Leases dropped before batch end: LRU revocation under the per-
  /// accessor lease cap, or a wholesale release when pool pressure
  /// degrades the accessor to transient pins. Not on the wire — an
  /// operator-facing pressure signal (/metrics), not a result property.
  size_t lease_revocations = 0;

  void Reset() { *this = PageIOStats{}; }

  void Merge(const PageIOStats& other) {
    page_hits += other.page_hits;
    page_misses += other.page_misses;
    page_evictions += other.page_evictions;
    lease_hits += other.lease_hits;
    pages_leased += other.pages_leased;
    pages_distinct += other.pages_distinct;
    lease_revocations += other.lease_revocations;
  }

  size_t PageAccesses() const { return page_hits + page_misses; }
};

}  // namespace octopus::storage

#endif  // OCTOPUS_STORAGE_PAGE_H_
