// Copyright 2026 The OCTOPUS Reproduction Authors
// OCT2 delta pages: the out-of-core face of mesh dynamism. A snapshot
// file is the frozen state of one simulation step; advancing an epoch
// must not rewrite it — adjacency, CSR offsets and the surface list are
// untouched by deformation, and only the *position* pages whose content
// actually changed need fresh bytes. A `PositionOverlay` is the
// immutable set of those rewritten pages for one epoch: readers check it
// before the buffer pool, epochs share unchanged pages structurally
// (copy-on-write), and the base file stays the step-0 source of truth.
//
// An overlay's pages live in one of two places: in memory (the hot,
// recent epochs) or in an on-disk spill sidecar reached through a
// `BufferManager` (epochs past the retention window — see
// storage/epoch_spill.h). Readers go through `ReadBytes`, which hides
// the distinction; spilled reads are priced into the caller's
// `PageIOStats` exactly like base-snapshot reads.
#ifndef OCTOPUS_STORAGE_DELTA_OVERLAY_H_
#define OCTOPUS_STORAGE_DELTA_OVERLAY_H_

#include <algorithm>
#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "common/vec3.h"
#include "storage/buffer_manager.h"
#include "storage/page.h"
#include "storage/snapshot.h"

namespace octopus::storage {

/// \brief Immutable per-epoch overlay of rewritten position pages.
///
/// Entry `i` covers absolute page `positions_start_page + i`; an entry
/// with no bytes (memory or spilled) means "read the base snapshot (or,
/// transitively, nothing ever rewrote this page)". Page content is
/// byte-identical to what an OCT2 writer would emit for the same
/// positions (entries never straddle a page, zero-padded tail), so
/// overlay reads and base reads are interchangeable. Resident pages
/// store only their entry bytes (the zero pad is implicit), so
/// `resident_bytes` counts actual data, not page capacity.
class PositionOverlay {
 public:
  using PageBytes = std::vector<std::byte>;

  /// Bytes of *memory-resident* position page `index` (relative to the
  /// positions section), or null when the page is not resident here
  /// (never rewritten, or spilled to disk — use `ReadBytes`).
  const std::byte* Lookup(uint64_t index) const {
    return index < pages_.size() && pages_[index] != nullptr
               ? pages_[index]->data()
               : nullptr;
  }

  /// True when the overlay holds bytes for page `index` at all —
  /// resident or spilled. The inline hot-path test: probe and position
  /// reads check this before paying an out-of-line overlay read, so
  /// pages the simulation never rewrote cost two loads, not a call.
  bool Covers(uint64_t index) const {
    return (index < pages_.size() && pages_[index] != nullptr) ||
           (index < spilled_.size() && spilled_[index] != kInvalidPageId);
  }

  /// Copies `len` bytes at `offset` within overlay page `index` into
  /// `dst`. Returns false when the overlay has no bytes for that page
  /// (caller reads the base snapshot). Resident pages count a pool hit;
  /// spilled pages read through the sidecar's buffer pool and count
  /// hits/misses/evictions there — spill reload I/O is priced, not
  /// hidden. `offset + len` must stay within the page's entry bytes.
  bool ReadBytes(uint64_t index, size_t offset, size_t len, void* dst,
                 PageIOStats* stats) const;

  /// Pages this overlay holds fresh bytes for in memory (shared or
  /// owned); spilled pages are not resident.
  size_t resident_pages() const {
    size_t n = 0;
    for (const auto& page : pages_) n += page != nullptr ? 1 : 0;
    return n;
  }

  /// Entry bytes actually held in memory (tail pages count their real
  /// content, not the page capacity they would occupy on disk).
  size_t resident_bytes() const;

  /// Pages served from the spill sidecar instead of memory.
  size_t spilled_pages() const {
    size_t n = 0;
    for (const PageId id : spilled_) n += id != kInvalidPageId ? 1 : 0;
    return n;
  }

  /// Number of overlay page slots (== position pages of the snapshot).
  size_t num_page_slots() const {
    return std::max(pages_.size(), spilled_.size());
  }

  /// Sidecar page id of `index` when spilled, else `kInvalidPageId`.
  PageId spilled_id(uint64_t index) const {
    return index < spilled_.size() ? spilled_[index] : kInvalidPageId;
  }

  /// The sidecar's read pool (null while nothing is spilled) — exposed
  /// so `PagedMeshAccessor` can lease spilled delta pages through the
  /// same mechanism as base-snapshot pages instead of paying a
  /// `CopyOut` pin round trip per read.
  BufferManager* spill_pool() const { return spill_pool_.get(); }

  /// Entry bytes of memory-resident page `index` (0 when not resident).
  size_t resident_page_bytes(uint64_t index) const {
    return index < pages_.size() && pages_[index] != nullptr
               ? pages_[index]->size()
               : 0;
  }

  /// Derives the next epoch's overlay: compares `old_positions` (the
  /// previous epoch's state, which `prev` is consistent with) against
  /// `new_positions` page by page, serializes fresh bytes for changed
  /// pages and shares `prev`'s entries for unchanged ones. Returns the
  /// overlay plus, via `pages_rewritten`, how many pages got fresh
  /// bytes this step — the delta the paper's out-of-core story prices.
  /// `prev` may be null (first step) and may itself be partially
  /// spilled (unchanged spilled pages stay spilled in the result).
  /// Position counts must match the header's `num_vertices`.
  static std::shared_ptr<const PositionOverlay> BuildNext(
      const SnapshotHeader& header, const PositionOverlay* prev,
      std::span<const Vec3> old_positions,
      std::span<const Vec3> new_positions, size_t* pages_rewritten);

  /// Builds the disk-backed twin of `src`: every page `src` covers is
  /// recorded as spilled at the caller-provided sidecar page id
  /// (`sidecar_ids[i]` for overlay page `i`, `kInvalidPageId` where
  /// `src` has no bytes), served through `pool` on read. The twin holds
  /// no resident bytes — callers swap it in for `src` and let readers
  /// still holding `src` drain naturally (copy-on-write, like the
  /// overlays themselves).
  static std::shared_ptr<const PositionOverlay> SpilledTwin(
      const PositionOverlay& src, std::vector<PageId> sidecar_ids,
      std::shared_ptr<BufferManager> pool);

 private:
  std::vector<std::shared_ptr<const PageBytes>> pages_;
  /// Sidecar page id per overlay page (`kInvalidPageId` = not spilled).
  /// Empty for fully resident overlays.
  std::vector<PageId> spilled_;
  /// Read pool over the spill sidecar; set iff any page is spilled.
  std::shared_ptr<BufferManager> spill_pool_;
};

}  // namespace octopus::storage

#endif  // OCTOPUS_STORAGE_DELTA_OVERLAY_H_
