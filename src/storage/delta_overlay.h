// Copyright 2026 The OCTOPUS Reproduction Authors
// OCT2 delta pages: the out-of-core face of mesh dynamism. A snapshot
// file is the frozen state of one simulation step; advancing an epoch
// must not rewrite it — adjacency, CSR offsets and the surface list are
// untouched by deformation, and only the *position* pages whose content
// actually changed need fresh bytes. A `PositionOverlay` is the
// immutable set of those rewritten pages for one epoch: readers check it
// before the buffer pool, epochs share unchanged pages structurally
// (copy-on-write), and the base file stays the step-0 source of truth.
#ifndef OCTOPUS_STORAGE_DELTA_OVERLAY_H_
#define OCTOPUS_STORAGE_DELTA_OVERLAY_H_

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "common/vec3.h"
#include "storage/snapshot.h"

namespace octopus::storage {

/// \brief Immutable per-epoch overlay of rewritten position pages.
///
/// Entry `i` covers absolute page `positions_start_page + i`; a null
/// entry means "read the base snapshot (or, transitively, nothing ever
/// rewrote this page)". Page content is byte-identical to what an OCT2
/// writer would emit for the same positions (entries never straddle a
/// page, zero-padded tail), so overlay reads and base reads are
/// interchangeable.
class PositionOverlay {
 public:
  using PageBytes = std::vector<std::byte>;

  /// Bytes of position page `index` (relative to the positions
  /// section), or null when the page was never rewritten.
  const std::byte* Lookup(uint64_t index) const {
    return index < pages_.size() && pages_[index] != nullptr
               ? pages_[index]->data()
               : nullptr;
  }

  /// Pages this overlay holds fresh bytes for (shared or owned).
  size_t resident_pages() const {
    size_t n = 0;
    for (const auto& page : pages_) n += page != nullptr ? 1 : 0;
    return n;
  }

  size_t resident_bytes() const;

  /// Derives the next epoch's overlay: compares `old_positions` (the
  /// previous epoch's state, which `prev` is consistent with) against
  /// `new_positions` page by page, serializes fresh bytes for changed
  /// pages and shares `prev`'s entries for unchanged ones. Returns the
  /// overlay plus, via `pages_rewritten`, how many pages got fresh
  /// bytes this step — the delta the paper's out-of-core story prices.
  /// `prev` may be null (first step). Position counts must match the
  /// header's `num_vertices`.
  static std::shared_ptr<const PositionOverlay> BuildNext(
      const SnapshotHeader& header, const PositionOverlay* prev,
      std::span<const Vec3> old_positions,
      std::span<const Vec3> new_positions, size_t* pages_rewritten);

 private:
  std::vector<std::shared_ptr<const PageBytes>> pages_;
};

}  // namespace octopus::storage

#endif  // OCTOPUS_STORAGE_DELTA_OVERLAY_H_
