// Copyright 2026 The OCTOPUS Reproduction Authors
// The out-of-core mesh view: a `PagedMeshStore` owns an open OCT2
// snapshot plus its buffer pool, and hands out per-thread
// `PagedMeshAccessor`s through which the query phases read positions and
// adjacency one page access at a time. Mirrors how production CFD codes
// (e.g. Code_Saturne's fvm/cs_io layers) keep mesh data behind a paged
// I/O layer rather than one flat in-memory vector.
#ifndef OCTOPUS_STORAGE_PAGED_MESH_H_
#define OCTOPUS_STORAGE_PAGED_MESH_H_

#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/vec3.h"
#include "mesh/types.h"
#include "storage/buffer_manager.h"
#include "storage/delta_overlay.h"
#include "storage/snapshot.h"

namespace octopus::storage {

/// \brief An open snapshot: header, eagerly loaded surface vertex list,
/// and the shared buffer pool. Immutable after `Open`; any number of
/// accessors (one per thread) may read through it concurrently.
class PagedMeshStore {
 public:
  static Result<std::unique_ptr<PagedMeshStore>> Open(
      const std::string& path, const BufferManager::Options& options);

  PagedMeshStore(const PagedMeshStore&) = delete;
  PagedMeshStore& operator=(const PagedMeshStore&) = delete;

  const SnapshotHeader& header() const { return header_; }
  size_t num_vertices() const { return header_.num_vertices; }
  SnapshotLayout layout() const {
    return static_cast<SnapshotLayout>(header_.layout);
  }

  /// The snapshot's surface vertex ids, ascending — the probe order the
  /// `SurfaceIndex` is built from. Loaded once at `Open` (a sequential
  /// read), deliberately not routed through the pool: it is part of the
  /// index, not of the crawled data.
  const std::vector<VertexId>& surface_vertices() const {
    return surface_vertices_;
  }

  BufferManager* buffer_manager() const { return buffer_.get(); }

  /// Snapshot bytes on disk.
  size_t FileBytes() const { return header_.FileBytes(); }

 private:
  PagedMeshStore(SnapshotHeader header, std::vector<VertexId> surface,
                 std::unique_ptr<BufferManager> buffer)
      : header_(header),
        surface_vertices_(std::move(surface)),
        buffer_(std::move(buffer)) {}

  SnapshotHeader header_;
  std::vector<VertexId> surface_vertices_;
  std::unique_ptr<BufferManager> buffer_;
};

/// \brief Per-thread read handle over a `PagedMeshStore`, satisfying the
/// `MeshAccessor` concept (see storage/mesh_accessor.h).
///
/// Every read copies out of the buffer pool under a transient pin, so an
/// accessor never holds pool resources between calls — the property that
/// lets a 2-page pool serve any thread count. The span returned by
/// `neighbors` points into accessor-local scratch and stays valid until
/// the next `neighbors` call (`position` calls do not invalidate it),
/// which is exactly the contract the crawler and directed walk need.
class PagedMeshAccessor {
 public:
  /// `stats` receives this context's page-I/O counters (may be
  /// repointed later via `set_stats`). Both pointers must outlive the
  /// accessor.
  PagedMeshAccessor(const PagedMeshStore* store, PageIOStats* stats)
      : store_(store), stats_(stats) {}

  const PagedMeshStore& store() const { return *store_; }
  void set_stats(PageIOStats* stats) { stats_ = stats; }

  /// Epoch-pinned position reads: while set, position pages present in
  /// `overlay` are served from its (memory-resident) delta bytes instead
  /// of the base snapshot — the epoch the caller pinned. The overlay
  /// must outlive the reads (callers pin the epoch's shared_ptr for the
  /// whole batch). Null = base snapshot (epoch 0). Adjacency always
  /// reads the base file: connectivity never deforms.
  void set_overlay(const PositionOverlay* overlay) { overlay_ = overlay; }

  size_t num_vertices() const { return store_->num_vertices(); }

  Vec3 position(VertexId v) {
    const SnapshotHeader& h = store_->header();
    const size_t per_page = h.PositionsPerPage();
    Vec3 p;
    // Overlay first: a rewritten page serves from memory (counted as a
    // pool hit) or, past the retention window, from the spill sidecar's
    // pool (real, priced page I/O). No overlay entry = base snapshot.
    if (overlay_ != nullptr &&
        overlay_->ReadBytes(v / per_page, (v % per_page) * sizeof(Vec3),
                            sizeof(Vec3), &p, stats_)) {
      return p;
    }
    store_->buffer_manager()->CopyOut(
        static_cast<PageId>(h.positions_start_page + v / per_page),
        (v % per_page) * sizeof(Vec3), sizeof(Vec3), &p, stats_);
    return p;
  }

  std::span<const VertexId> neighbors(VertexId v);

  /// Prefetch is a no-op out of core: there is no cheap speculative page
  /// read that would not also count (and cost) as an access.
  void PrefetchPosition(VertexId) {}

  /// Bytes of accessor-local scratch (footprint accounting).
  size_t ScratchBytes() const {
    return scratch_.capacity() * sizeof(VertexId);
  }

 private:
  uint32_t ReadU32(uint64_t section_start_page, uint64_t index);

  const PagedMeshStore* store_;
  PageIOStats* stats_;
  const PositionOverlay* overlay_ = nullptr;
  std::vector<VertexId> scratch_;  // neighbors() copy-out target
};

}  // namespace octopus::storage

#endif  // OCTOPUS_STORAGE_PAGED_MESH_H_
