// Copyright 2026 The OCTOPUS Reproduction Authors
// The out-of-core mesh view: a `PagedMeshStore` owns an open OCT2
// snapshot plus its buffer pool, and hands out per-thread
// `PagedMeshAccessor`s through which the query phases read positions and
// adjacency. Mirrors how production CFD codes (e.g. Code_Saturne's
// fvm/cs_io layers) keep mesh data behind a paged I/O layer rather than
// one flat in-memory vector — and, like them, keep a page mapped for the
// duration of a mesh walk instead of re-resolving it per scalar.
//
// Leased page references: an accessor may hold a small, bounded set of
// *leases* — long-lived pins acquired exclusively through the pool's
// non-blocking `TryPin`. A page leased once during a crawl is then read
// through a raw frame pointer (no mutex, no hash lookup, no memcpy for
// in-page neighbor runs) until the batch ends or the lease is revoked.
// The discipline that keeps the 2-page-pool-serves-any-thread-count
// guarantee intact:
//
//  * leases never block: `TryPin` failure (pool pressure) releases every
//    lease and degrades the accessor to the transient-pin path for the
//    rest of the batch;
//  * a thread blocks inside the pool only after releasing all leases —
//    except, at most, the one backing an outstanding zero-copy
//    `neighbors()` span, and zero-copy is enabled only under a per-shard
//    frame budget that keeps total span pins strictly below the frame
//    count, so blocked threads can never pin the whole pool;
//  * every lease is released at batch end (`EndBatch`), so counters are
//    deterministic and an idle accessor holds no pool resources.
#ifndef OCTOPUS_STORAGE_PAGED_MESH_H_
#define OCTOPUS_STORAGE_PAGED_MESH_H_

#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/vec3.h"
#include "mesh/types.h"
#include "storage/buffer_manager.h"
#include "storage/delta_overlay.h"
#include "storage/snapshot.h"

namespace octopus::storage {

/// \brief An open snapshot: header, eagerly loaded surface vertex list
/// (with base positions), and the shared buffer pool. Immutable after
/// `Open`; any number of accessors (one per thread) may read through it
/// concurrently.
class PagedMeshStore {
 public:
  static Result<std::unique_ptr<PagedMeshStore>> Open(
      const std::string& path, const BufferManager::Options& options);

  PagedMeshStore(const PagedMeshStore&) = delete;
  PagedMeshStore& operator=(const PagedMeshStore&) = delete;

  const SnapshotHeader& header() const { return header_; }
  size_t num_vertices() const { return header_.num_vertices; }
  SnapshotLayout layout() const {
    return static_cast<SnapshotLayout>(header_.layout);
  }

  /// The snapshot's surface vertex ids, ascending — the probe order the
  /// `SurfaceIndex` is built from. Loaded once at `Open` (a sequential
  /// read), deliberately not routed through the pool: it is part of the
  /// index, not of the crawled data.
  const std::vector<VertexId>& surface_vertices() const {
    return surface_vertices_;
  }

  /// Base-snapshot positions of the surface vertices, aligned with
  /// `surface_vertices()` (== the probe order). Loaded once at `Open`
  /// alongside the id list and priced the same way: the surface probe is
  /// index-side work, so `ProbePosition` serves undeformed positions
  /// from here at memory speed — only overlay-covered (deformed) pages
  /// cost page accesses, which keeps a query's page-access count near
  /// the distinct pages its walk and crawl actually touch.
  const std::vector<Vec3>& surface_positions() const {
    return surface_positions_;
  }

  BufferManager* buffer_manager() const { return buffer_.get(); }

  /// Snapshot bytes on disk.
  size_t FileBytes() const { return header_.FileBytes(); }

  /// Bytes of index-side data held resident by the store itself (the
  /// surface id list and its base positions) — counted into executor
  /// footprints alongside the surface hash table.
  size_t ResidentBytes() const {
    return surface_vertices_.capacity() * sizeof(VertexId) +
           surface_positions_.capacity() * sizeof(Vec3);
  }

 private:
  PagedMeshStore(SnapshotHeader header, std::vector<VertexId> surface,
                 std::vector<Vec3> surface_positions,
                 std::unique_ptr<BufferManager> buffer)
      : header_(header),
        surface_vertices_(std::move(surface)),
        surface_positions_(std::move(surface_positions)),
        buffer_(std::move(buffer)) {}

  SnapshotHeader header_;
  std::vector<VertexId> surface_vertices_;
  std::vector<Vec3> surface_positions_;
  std::unique_ptr<BufferManager> buffer_;
};

/// \brief Per-thread read handle over a `PagedMeshStore`, satisfying the
/// `MeshAccessor` concept (see storage/mesh_accessor.h).
///
/// Reads are served, in order of preference, from (1) a held lease (raw
/// frame pointer, no pool interaction), (2) a freshly acquired lease
/// (one `TryPin`, priced as a pool hit or miss plus `pages_leased`), or
/// (3) a transient pin (`CopyOut` semantics — the only path that may
/// block, and never while leases are held). The span returned by
/// `neighbors` stays valid until the next `neighbors` call (`position`
/// calls do not invalidate it): when the run does not cross a page
/// boundary it aliases the leased frame directly (zero-copy) and that
/// lease is protected from revocation; otherwise it points into
/// accessor-local scratch.
///
/// Counter semantics with leasing active: a page is priced into
/// hits/misses once per lease acquisition, reads through a held lease
/// count `lease_hits` only, so `PageAccesses()` ≈ distinct pages touched
/// per batch (`pages_distinct` is the exact per-shard count). With
/// leasing off (`lease_cap() == 0`, e.g. a 2-page pool) every read is a
/// transient pin priced per call — the pre-lease behavior, bit for bit.
class PagedMeshAccessor {
 public:
  /// Upper bound on leases per accessor; the effective cap is the
  /// smaller of this and the per-shard frame budget (2 frames of
  /// headroom per shard stay reserved for transient pins).
  static constexpr size_t kDefaultLeaseCap = 64;
  /// Zero-copy spans (which pin their page while outstanding) switch on
  /// only with at least this much lease budget.
  static constexpr size_t kMinLeasesForZeroCopy = 4;

  /// `stats` receives this context's page-I/O counters (may be
  /// repointed later via `set_stats`). Both pointers must outlive the
  /// accessor. A standalone accessor is configured as a single shard;
  /// batch executors call `BeginBatch` with the real shard count.
  PagedMeshAccessor(const PagedMeshStore* store, PageIOStats* stats)
      : store_(store),
        stats_(stats),
        probe_positions_(store->surface_positions().data()) {
    pos_div_.Init(
        static_cast<uint32_t>(store->header().PositionsPerPage()));
    u32_div_.Init(static_cast<uint32_t>(store->header().U32PerPage()));
    ConfigureLeases(1);
  }

  ~PagedMeshAccessor() { EndBatch(); }
  PagedMeshAccessor(const PagedMeshAccessor&) = delete;
  PagedMeshAccessor& operator=(const PagedMeshAccessor&) = delete;

  const PagedMeshStore& store() const { return *store_; }
  void set_stats(PageIOStats* stats) { stats_ = stats; }

  /// Binds the accessor to a batch: releases any stale leases, pins
  /// position reads to `overlay` (null = base snapshot), and sizes the
  /// lease budget for `shards` concurrent accessors sharing the pool.
  /// While an overlay is set, position pages present in it are served
  /// from its (memory-resident) delta bytes or its spill sidecar — the
  /// epoch the caller pinned; the overlay must outlive the batch.
  /// Adjacency always reads the base file: connectivity never deforms.
  void BeginBatch(const PositionOverlay* overlay, size_t shards);

  /// Releases every lease, clears the degraded flag and the per-batch
  /// first-touch tracking. Idempotent; called by the batch core after a
  /// shard's last query so idle accessors hold no pool resources.
  void EndBatch();

  size_t num_vertices() const { return store_->num_vertices(); }

  Vec3 position(VertexId v) {
    const uint64_t page_index = pos_div_.Div(v);
    const size_t offset =
        (v - page_index * pos_div_.divisor()) * sizeof(Vec3);
    Vec3 p;
    // MRU fast path: consecutive reads overwhelmingly land on the last
    // position page (crawl locality); serve them with one compare and a
    // 12-byte copy — no overlay lookup, no lease-table probe.
    if (page_index == pos_mru_index_) {
      ++stats_->lease_hits;
      std::memcpy(&p, pos_mru_data_ + offset, sizeof(Vec3));
      return p;
    }
    ReadPosition(page_index, offset, &p);
    return p;
  }

  std::span<const VertexId> neighbors(VertexId v);

  /// The surface probe's position read: `rank` is the vertex's index in
  /// the probe order (== the store's surface list). Overlay-covered
  /// (deformed) pages read through the overlay like `position`; all
  /// other reads come from the store's resident surface positions — the
  /// probe is index work, not crawled-data I/O.
  /// The probe is a bare array read: `probe_positions_` points at the
  /// store's base surface positions, or — while an overlay is bound — at
  /// a batch-local copy `BeginBatch` patched with the overlay's deformed
  /// pages (priced once per covered page, like the crawl's first touch).
  /// Either way the per-candidate cost matches the in-memory executor.
  Vec3 ProbePosition(size_t rank, VertexId) const {
    return probe_positions_[rank];
  }

  void PrefetchProbePosition(size_t rank, VertexId) {
    __builtin_prefetch(probe_positions_ + rank);
  }

  /// Real out-of-core prefetch: leases `v`'s position page ahead of
  /// demand — the crawl frontier walking a Hilbert-contiguous run pulls
  /// the next page before the first read lands on it. Strictly
  /// opportunistic: only with free lease budget (never revokes a held
  /// lease), never under degradation, and a failed `TryPin` is simply
  /// dropped.
  void PrefetchPosition(VertexId v);

  /// Bytes of accessor-local scratch (footprint accounting).
  size_t ScratchBytes() const {
    return scratch_.capacity() * sizeof(VertexId) +
           slots_.capacity() * sizeof(Lease) +
           overlay_touched_.capacity() * sizeof(uint8_t) +
           patched_probe_.capacity() * sizeof(Vec3) +
           patched_ranks_.capacity() * sizeof(uint32_t);
  }

  // Lease introspection (tests and benches).
  size_t lease_cap() const { return lease_cap_; }
  size_t leases_held() const { return count_; }
  bool degraded() const { return degraded_; }
  bool zero_copy_enabled() const { return zero_copy_; }

 private:
  struct Lease {
    const std::byte* data = nullptr;  ///< null marks an empty slot
    BufferManager* pool = nullptr;    ///< pool holding the pin
    PageId page = 0;
    uint64_t tick = 0;  ///< accessor-local LRU stamp
  };

  /// Division by a fixed runtime divisor via reciprocal multiplication
  /// (exact for any 32-bit numerator). Page-index math runs on every
  /// read; a hardware divide per read is measurable against the
  /// in-memory path.
  class FastDiv {
   public:
    void Init(uint32_t divisor) {
      d_ = divisor;
      magic_ = ~0ull / divisor + 1;
    }
    uint32_t Div(uint32_t n) const {
      return static_cast<uint32_t>(
          (static_cast<unsigned __int128>(magic_) * n) >> 64);
    }
    uint32_t divisor() const { return d_; }

   private:
    uint64_t magic_ = 0;
    uint32_t d_ = 1;
  };

  // Tags namespacing `pages_distinct` keys across pools.
  static constexpr uint8_t kTagBase = 0;
  static constexpr uint8_t kTagSpill = 1;

  void ConfigureLeases(size_t shards);

  bool HasSpan() const { return span_pool_ != nullptr; }

  size_t HashSlot(const BufferManager* pool, PageId page) const {
    const uint64_t h = (static_cast<uint64_t>(page) +
                        (reinterpret_cast<uintptr_t>(pool) >> 4)) *
                       0x9E3779B97F4A7C15ull;
    return static_cast<size_t>(h >> 32) & slot_mask_;
  }

  Lease* FindLease(BufferManager* pool, PageId page);
  const std::byte* AcquireLease(BufferManager* pool, uint8_t tag,
                                PageId page, bool speculative);
  void InsertLease(BufferManager* pool, PageId page, const std::byte* data);
  void RevokeLRU();
  void EraseSlot(size_t hole);
  /// Unpins and forgets every lease; with `keep_span`, the lease backing
  /// the outstanding zero-copy span (if any) survives.
  void ReleaseLeases(bool keep_span);

  void NoteDistinct(uint8_t tag, PageId page) {
    if (distinct_.insert((static_cast<uint64_t>(tag) << 32) | page).second) {
      ++stats_->pages_distinct;
    }
  }

  /// Read through the lease table, falling back to a transient pin.
  void ReadPooled(BufferManager* pool, uint8_t tag, PageId page,
                  size_t offset, size_t len, void* dst);
  void TransientRead(BufferManager* pool, uint8_t tag, PageId page,
                     size_t offset, size_t len, void* dst);

  /// Overlay read of position page `index`; false = page not in the
  /// overlay (read the base snapshot).
  bool ReadOverlay(uint64_t index, size_t offset, size_t len, void* dst);

  /// Points `probe_positions_` at a batch-local surface-position array
  /// patched with the bound overlay's deformed pages (reverting last
  /// batch's patches first). Called by `BeginBatch` when an overlay is
  /// set.
  void PatchProbePositions();

  void ReadPosition(uint64_t page_index, size_t offset, Vec3* dst) {
    if (overlay_ != nullptr && overlay_->Covers(page_index) &&
        ReadOverlay(page_index, offset, sizeof(Vec3), dst)) {
      return;
    }
    const SnapshotHeader& h = store_->header();
    BufferManager* pool = store_->buffer_manager();
    const PageId page =
        static_cast<PageId>(h.positions_start_page + page_index);
    ReadPooled(pool, kTagBase, page, offset, sizeof(Vec3), dst);
    // If the read left a lease on this page, remember its frame for the
    // MRU fast path in position().
    if (mru_ != nullptr && mru_->page == page && mru_->pool == pool) {
      pos_mru_index_ = page_index;
      pos_mru_data_ = mru_->data;
    }
  }

  uint32_t ReadU32(uint64_t section_start_page, uint64_t index);

  const PagedMeshStore* store_;
  PageIOStats* stats_;
  const PositionOverlay* overlay_ = nullptr;
  std::vector<VertexId> scratch_;  // neighbors() copy-out target

  // Lease table: open-addressed (pool, page) -> frame pointer, linear
  // probing with backward-shift deletion, bounded by lease_cap_.
  std::vector<Lease> slots_;
  size_t slot_mask_ = 0;
  size_t count_ = 0;
  size_t lease_cap_ = 0;
  bool zero_copy_ = false;
  /// Pool pressure hit: serve the rest of the batch through transient
  /// pins (graceful degradation; reset by EndBatch).
  bool degraded_ = false;
  uint64_t tick_ = 0;
  /// Key of the lease backing the current zero-copy neighbors() span
  /// (revocation-protected); span_pool_ == nullptr means no such span.
  BufferManager* span_pool_ = nullptr;
  PageId span_page_ = kInvalidPageId;
  uint64_t last_prefetch_page_ = ~0ull;
  /// MRU caches for the two per-read hot paths. `mru_` points at the
  /// most recently used lease slot (valid only until the next revoke or
  /// release — both reset it); the pos pair short-circuits `position()`
  /// to a stable frame or overlay-resident byte range keyed by position
  /// page index. Never populated with transient-pin data, and never in
  /// legacy (lease_cap_ == 0) mode where every read must be re-priced.
  Lease* mru_ = nullptr;
  uint64_t pos_mru_index_ = ~0ull;
  const std::byte* pos_mru_data_ = nullptr;
  FastDiv pos_div_;
  FastDiv u32_div_;
  /// Probe-order positions the current batch reads: the store's base
  /// array, or `patched_probe_` while an overlay is bound (see
  /// `PatchProbePositions`). `patched_ranks_` records which entries the
  /// last patch overwrote so the next batch reverts only those.
  const Vec3* probe_positions_ = nullptr;
  std::vector<Vec3> patched_probe_;
  std::vector<uint32_t> patched_ranks_;
  /// Per-batch first-touch bit per overlay page slot: memory-resident
  /// delta pages pin nothing, so they bypass the bounded lease table —
  /// this prices them once per batch (hit + lease) and `lease_hits`
  /// thereafter.
  std::vector<uint8_t> overlay_touched_;
  /// Exact distinct (pool, page) pairs touched this batch.
  std::unordered_set<uint64_t> distinct_;
};

}  // namespace octopus::storage

#endif  // OCTOPUS_STORAGE_PAGED_MESH_H_
