// Copyright 2026 The OCTOPUS Reproduction Authors
// The MeshAccessor abstraction: the single interface through which the
// query phases (surface probe, directed walk, crawl) read vertex
// positions and adjacency. Two implementations exist —
//
//  * `InMemoryMeshAccessor`: a zero-overhead wrapper over the resident
//    `MeshGraphView` (every call inlines to the same loads as before the
//    storage layer existed), and
//  * `storage::PagedMeshAccessor` (paged_mesh.h): the out-of-core view
//    reading through a byte-capped buffer pool —
//
// so every query path runs unmodified over either. The executor cores
// are templates constrained by the `MeshAccessor` concept; the in-memory
// path keeps its original machine code, the paged path pays page
// accesses.
//
// Accessor contract:
//  * `position(v)` returns the vertex position (by value or reference).
//  * `ProbePosition(rank, v)` is the surface probe's read: `v` is the
//    `rank`-th vertex of the probe order. Must return the same value as
//    `position(v)`; the split lets the paged accessor serve undeformed
//    probe reads from index-resident data instead of page I/O.
//  * `neighbors(v)` returns a span that remains valid until the NEXT
//    `neighbors` call on the same accessor; `position` calls never
//    invalidate it. Callers must not hold a span across `neighbors`
//    calls (the crawler and directed walk naturally comply).
//  * `PrefetchPosition(v)` is a best-effort latency hint, free to no-op
//    (the paged accessor leases the page ahead of demand).
//  * Accessors are single-threaded handles; concurrent shards each use
//    their own (the backing store may be shared).
#ifndef OCTOPUS_STORAGE_MESH_ACCESSOR_H_
#define OCTOPUS_STORAGE_MESH_ACCESSOR_H_

#include <concepts>
#include <cstddef>
#include <span>

#include "common/vec3.h"
#include "mesh/graph_view.h"
#include "mesh/types.h"

namespace octopus::storage {

/// Concept every mesh accessor implementation must satisfy.
template <typename A>
concept MeshAccessor = requires(A& a, VertexId v, size_t rank) {
  { a.num_vertices() } -> std::convertible_to<size_t>;
  { a.position(v) } -> std::convertible_to<Vec3>;
  { a.ProbePosition(rank, v) } -> std::convertible_to<Vec3>;
  { a.neighbors(v) } -> std::convertible_to<std::span<const VertexId>>;
  a.PrefetchPosition(v);
};

/// \brief The resident implementation: forwards to `MeshGraphView`.
///
/// Copyable and free to construct; per-shard instances are made on the
/// fly. `position` returns a reference into the mesh's position array
/// and `neighbors` a span into its CSR arrays — zero copies, zero
/// overhead.
class InMemoryMeshAccessor {
 public:
  explicit InMemoryMeshAccessor(const MeshGraphView& graph)
      : graph_(graph) {}

  size_t num_vertices() const { return graph_.num_vertices(); }

  const Vec3& position(VertexId v) const { return graph_.position(v); }

  /// In memory the probe reads the position array like everything else.
  const Vec3& ProbePosition(size_t, VertexId v) const {
    return position(v);
  }

  std::span<const VertexId> neighbors(VertexId v) const {
    return graph_.neighbors(v);
  }

  void PrefetchPosition(VertexId v) const {
    __builtin_prefetch(graph_.positions.data() + v);
  }

  void PrefetchProbePosition(size_t, VertexId v) const {
    PrefetchPosition(v);
  }

 private:
  MeshGraphView graph_;
};

static_assert(MeshAccessor<InMemoryMeshAccessor>);

}  // namespace octopus::storage

#endif  // OCTOPUS_STORAGE_MESH_ACCESSOR_H_
