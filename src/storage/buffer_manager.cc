// Copyright 2026 The OCTOPUS Reproduction Authors
#include "storage/buffer_manager.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace octopus::storage {

const char* EvictionName(BufferManager::Eviction eviction) {
  switch (eviction) {
    case BufferManager::Eviction::kLRU:
      return "lru";
    case BufferManager::Eviction::kClock:
      return "clock";
  }
  return "unknown";
}

Result<std::unique_ptr<BufferManager>> BufferManager::Open(
    const std::string& path, size_t page_bytes, uint64_t num_pages,
    const Options& options) {
  if (page_bytes == 0 || num_pages == 0) {
    return Status::InvalidArgument("empty page geometry");
  }
  if (options.pool_bytes < 2 * page_bytes) {
    return Status::InvalidArgument(
        "buffer pool must cover at least 2 pages (" +
        std::to_string(2 * page_bytes) + " bytes)");
  }
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IOError("cannot open for read: " + path);
  }
  return std::unique_ptr<BufferManager>(
      new BufferManager(file, page_bytes, num_pages, options));
}

BufferManager::BufferManager(std::FILE* file, size_t page_bytes,
                             uint64_t num_pages, const Options& options)
    : options_(options),
      page_bytes_(page_bytes),
      max_frames_(options.pool_bytes / page_bytes),
      num_pages_(num_pages),
      file_(file) {
  // Frames allocate lazily; only pre-reserve bookkeeping for pools that
  // plausibly fill (a generous cap can exceed the snapshot many times
  // over).
  frames_.reserve(std::min<size_t>(max_frames_, num_pages));
}

BufferManager::~BufferManager() {
  // No readers are live at destruction; the lock only satisfies the
  // analysis (file_ is guarded) at zero contention.
  common::MutexLock lock(mu_);
  std::fclose(file_);
}

size_t BufferManager::AllocatedBytes() const {
  common::MutexLock lock(mu_);
  return frames_.size() * page_bytes_;
}

PageIOStats BufferManager::TotalStats() const {
  common::MutexLock lock(mu_);
  return totals_;
}

size_t BufferManager::PickVictim() {
  if (options_.eviction == Eviction::kLRU) {
    size_t victim = max_frames_;
    uint64_t oldest = ~0ull;
    for (size_t i = 0; i < frames_.size(); ++i) {
      if (frames_[i].pins == 0 && frames_[i].lru_tick < oldest) {
        oldest = frames_[i].lru_tick;
        victim = i;
      }
    }
    return victim;
  }
  // Clock: sweep at most two full revolutions (the first clears
  // referenced bits, the second then finds any unpinned frame).
  for (size_t step = 0; step < 2 * frames_.size(); ++step) {
    Frame& frame = frames_[clock_hand_];
    const size_t index = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % frames_.size();
    if (frame.pins != 0) continue;
    if (frame.referenced) {
      frame.referenced = false;
      continue;
    }
    return index;
  }
  return max_frames_;  // everything pinned
}

size_t BufferManager::TryAcquireFrame(PageIOStats* stats) {
  if (frames_.size() < max_frames_) {
    // Grow lazily; total frame memory stays under the byte cap.
    frames_.emplace_back();
    frames_.back().data = std::make_unique<std::byte[]>(page_bytes_);
    assert(frames_.size() * page_bytes_ <= options_.pool_bytes);
    return frames_.size() - 1;
  }
  const size_t victim = PickVictim();
  if (victim != max_frames_) {
    Frame& frame = frames_[victim];
    if (frame.page != kInvalidPageId) {
      page_to_frame_.erase(frame.page);
      frame.page = kInvalidPageId;
      ++stats->page_evictions;
      ++totals_.page_evictions;
    }
  }
  return victim;
}

void BufferManager::ExtendTo(uint64_t num_pages) {
  common::MutexLock lock(mu_);
  num_pages_ = std::max(num_pages_, num_pages);
}

const std::byte* BufferManager::Pin(PageId page, PageIOStats* stats) {
  common::MutexLock lock(mu_);
  assert(page < num_pages_ && "page out of range");
  for (;;) {
    auto it = page_to_frame_.find(page);
    if (it != page_to_frame_.end()) {
      Frame& frame = frames_[it->second];
      ++frame.pins;
      frame.lru_tick = ++tick_;
      frame.referenced = true;
      ++stats->page_hits;
      ++totals_.page_hits;
      return frame.data.get();
    }

    const size_t index = TryAcquireFrame(stats);
    if (index == max_frames_) {
      // Every frame pinned by other threads: wait for an Unpin, then
      // RE-PROBE the residency map — another thread may have loaded
      // this very page meanwhile, and loading it twice would alias two
      // frames to one page and corrupt the pin bookkeeping. Readers
      // hold at most one transient pin each, so a frame frees up
      // quickly and no pin is ever held while waiting (no deadlock).
      frame_freed_.Wait(mu_);
      continue;
    }

    Frame& frame = frames_[index];
    // Read under the lock: the FILE* seek+read pair is not atomic, and
    // serialized I/O is fine at reproduction scale.
    if (std::fseek(file_,
                   static_cast<long>(page * page_bytes_), SEEK_SET) != 0 ||
        std::fread(frame.data.get(), 1, page_bytes_, file_) !=
            page_bytes_) {
      // The writer pads every page to full size, so a short read means
      // the file was truncated after open — unrecoverable mid-query.
      assert(false && "snapshot page read failed");
      std::memset(frame.data.get(), 0, page_bytes_);
    }
    frame.page = page;
    frame.pins = 1;
    frame.lru_tick = ++tick_;
    frame.referenced = true;
    page_to_frame_[page] = index;
    ++stats->page_misses;
    ++totals_.page_misses;
    return frame.data.get();
  }
}

const std::byte* BufferManager::TryPin(PageId page, PageIOStats* stats) {
  common::MutexLock lock(mu_);
  assert(page < num_pages_ && "page out of range");
  auto it = page_to_frame_.find(page);
  if (it != page_to_frame_.end()) {
    Frame& frame = frames_[it->second];
    ++frame.pins;
    frame.lru_tick = ++tick_;
    frame.referenced = true;
    ++stats->page_hits;
    ++totals_.page_hits;
    return frame.data.get();
  }
  const size_t index = TryAcquireFrame(stats);
  if (index == max_frames_) return nullptr;  // every frame pinned
  Frame& frame = frames_[index];
  if (std::fseek(file_, static_cast<long>(page * page_bytes_), SEEK_SET) !=
          0 ||
      std::fread(frame.data.get(), 1, page_bytes_, file_) != page_bytes_) {
    assert(false && "snapshot page read failed");
    std::memset(frame.data.get(), 0, page_bytes_);
  }
  frame.page = page;
  frame.pins = 1;
  frame.lru_tick = ++tick_;
  frame.referenced = true;
  page_to_frame_[page] = index;
  ++stats->page_misses;
  ++totals_.page_misses;
  return frame.data.get();
}

void BufferManager::Unpin(PageId page) {
  common::MutexLock lock(mu_);
  auto it = page_to_frame_.find(page);
  assert(it != page_to_frame_.end() && "unpin of a non-resident page");
  Frame& frame = frames_[it->second];
  assert(frame.pins > 0 && "unpin of an unpinned page");
  if (--frame.pins == 0) frame_freed_.NotifyOne();
}

void BufferManager::CopyOut(PageId page, size_t offset, size_t len,
                            void* dst, PageIOStats* stats) {
  assert(offset + len <= page_bytes_);
  {
    // Hit fast path: one lock acquisition and one map lookup instead of
    // the Pin/Unpin pair's two of each; the memcpy runs outside the
    // mutex, under the pin. The frame is re-addressed by index after
    // relocking (the frames_ vector may have grown and relocated; the
    // index and the heap page buffer are stable, pinned frames are
    // never evicted or repurposed).
    common::MutexLock lock(mu_);
    auto it = page_to_frame_.find(page);
    if (it != page_to_frame_.end()) {
      const size_t index = it->second;
      Frame& frame = frames_[index];
      ++frame.pins;
      frame.lru_tick = ++tick_;
      frame.referenced = true;
      ++stats->page_hits;
      ++totals_.page_hits;
      const std::byte* data = frame.data.get();
      lock.Unlock();
      std::memcpy(dst, data + offset, len);
      lock.Lock();
      if (--frames_[index].pins == 0) frame_freed_.NotifyOne();
      return;
    }
  }
  const std::byte* data = Pin(page, stats);
  std::memcpy(dst, data + offset, len);
  Unpin(page);
}

}  // namespace octopus::storage
