// Copyright 2026 The OCTOPUS Reproduction Authors
// Server-side observability: plain counters plus a log-bucketed latency
// histogram. Owned and mutated exclusively by the server's event-loop
// thread (single-writer, no atomics); readers either ask over the wire
// (STATS frame) or inspect the server object after `Run` returns.
#ifndef OCTOPUS_SERVER_METRICS_H_
#define OCTOPUS_SERVER_METRICS_H_

#include <array>
#include <cstdint>
#include <span>

#include "octopus/phase_stats.h"
#include "server/protocol.h"

namespace octopus::server {

/// \brief Power-of-two-bucketed latency histogram.
///
/// Bucket i counts samples with floor(log2(nanos)) == i (bucket 0 also
/// takes 0 ns). Percentile lookups return the upper bound of the bucket
/// the rank falls into — at most 2x off, which is plenty to distinguish
/// "microseconds" from "milliseconds" without storing samples.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 63;

  void Record(uint64_t nanos);

  uint64_t count() const { return count_; }
  uint64_t max_nanos() const { return max_nanos_; }
  /// Sum of every recorded sample, saturating at uint64 max (a u64-max
  /// sample must not wrap the sum back to small values).
  uint64_t sum_nanos() const { return sum_nanos_; }
  /// The raw per-bucket counts (bucket i = floor(log2(nanos)) == i),
  /// for Prometheus exposition.
  std::span<const uint64_t> bucket_counts() const { return buckets_; }

  /// Upper bound of the bucket holding the `p`-quantile sample
  /// (p in [0, 1]); 0 when empty.
  uint64_t PercentileNanos(double p) const;

 private:
  std::array<uint64_t, kBuckets> buckets_ = {};
  uint64_t count_ = 0;
  uint64_t max_nanos_ = 0;
  uint64_t sum_nanos_ = 0;
};

/// \brief All server counters, single-writer (the event loop).
struct ServerMetrics {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t frames_received = 0;
  uint64_t malformed_frames = 0;
  uint64_t queries_received = 0;
  uint64_t queries_rejected = 0;
  uint64_t queries_executed = 0;
  uint64_t batches_executed = 0;
  uint64_t results_sent = 0;
  uint64_t errors_sent = 0;
  /// Requests whose end-to-end time crossed the slow-query threshold
  /// (0 when the threshold is disabled).
  uint64_t slow_queries = 0;
  /// Total wall clock spent encoding RESULT frames.
  int64_t serialize_nanos_total = 0;
  /// Request arrival (frame fully parsed) to response enqueue.
  LatencyHistogram request_latency;
  /// Event-loop stall: wall clock from a poll() wakeup to the loop
  /// re-entering poll(), recorded while sessions exist. On the
  /// single-threaded front end this is exactly how long a freshly
  /// readable session can wait before the loop looks at it — the
  /// 8-client regression, as a histogram.
  LatencyHistogram loop_stall;
  /// Engine stats accumulated across every executed batch, including
  /// page-I/O counters when the backend is paged.
  PhaseStats engine_total;

  /// Saturating: a double-counted close must read as 0 active
  /// connections, not wrap to 2^64 - k (counters are self-checked in
  /// the STATS tests).
  uint64_t connections_active() const {
    return connections_closed > connections_accepted
               ? 0
               : connections_accepted - connections_closed;
  }
  double CoalesceFactor() const {
    return batches_executed == 0
               ? 0.0
               : static_cast<double>(queries_executed) /
                     static_cast<double>(batches_executed);
  }

  ServerStatsWire ToWire() const;
};

}  // namespace octopus::server

#endif  // OCTOPUS_SERVER_METRICS_H_
