// Copyright 2026 The OCTOPUS Reproduction Authors
// Server-side observability: plain counters plus a log-bucketed latency
// histogram. Owned and mutated exclusively by the server's event-loop
// thread (single-writer, no atomics); readers either ask over the wire
// (STATS frame) or inspect the server object after `Run` returns.
#ifndef OCTOPUS_SERVER_METRICS_H_
#define OCTOPUS_SERVER_METRICS_H_

#include <array>
#include <cstdint>

#include "octopus/phase_stats.h"
#include "server/protocol.h"

namespace octopus::server {

/// \brief Power-of-two-bucketed latency histogram.
///
/// Bucket i counts samples with floor(log2(nanos)) == i (bucket 0 also
/// takes 0 ns). Percentile lookups return the upper bound of the bucket
/// the rank falls into — at most 2x off, which is plenty to distinguish
/// "microseconds" from "milliseconds" without storing samples.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 63;

  void Record(uint64_t nanos);

  uint64_t count() const { return count_; }
  uint64_t max_nanos() const { return max_nanos_; }

  /// Upper bound of the bucket holding the `p`-quantile sample
  /// (p in [0, 1]); 0 when empty.
  uint64_t PercentileNanos(double p) const;

 private:
  std::array<uint64_t, kBuckets> buckets_ = {};
  uint64_t count_ = 0;
  uint64_t max_nanos_ = 0;
};

/// \brief All server counters, single-writer (the event loop).
struct ServerMetrics {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t frames_received = 0;
  uint64_t malformed_frames = 0;
  uint64_t queries_received = 0;
  uint64_t queries_rejected = 0;
  uint64_t queries_executed = 0;
  uint64_t batches_executed = 0;
  uint64_t results_sent = 0;
  uint64_t errors_sent = 0;
  /// Request arrival (frame fully parsed) to response enqueue.
  LatencyHistogram request_latency;
  /// Engine stats accumulated across every executed batch, including
  /// page-I/O counters when the backend is paged.
  PhaseStats engine_total;

  uint64_t connections_active() const {
    return connections_accepted - connections_closed;
  }
  double CoalesceFactor() const {
    return batches_executed == 0
               ? 0.0
               : static_cast<double>(queries_executed) /
                     static_cast<double>(batches_executed);
  }

  ServerStatsWire ToWire() const;
};

}  // namespace octopus::server

#endif  // OCTOPUS_SERVER_METRICS_H_
