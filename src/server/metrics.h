// Copyright 2026 The OCTOPUS Reproduction Authors
// Server-side observability: counters plus a log-linear-bucketed latency
// histogram. Since the multi-threaded front end, every counter is an
// atomic written from whichever pipeline stage owns the event (I/O
// threads, the scheduler thread, the serialization thread) and read
// lock-free by STATS / /metrics scrapers on other threads; the engine
// phase totals — a struct, not a word — are guarded by a small mutex
// (`MergeEngine` / `EngineTotal`). Plain field reads remain valid once
// the server has quiesced (after `Run` returns), which is how the tests
// and benches consume them.
#ifndef OCTOPUS_SERVER_METRICS_H_
#define OCTOPUS_SERVER_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "common/thread_annotations.h"
#include "octopus/phase_stats.h"
#include "server/protocol.h"

namespace octopus::server {

/// \brief Log-linear-bucketed latency histogram (16 sub-buckets per
/// octave), thread-safe for concurrent `Record` via relaxed atomics.
///
/// Nanos below 16 get one exact bucket each (indices 0..15); above
/// that, each power-of-two octave [2^o, 2^(o+1)) splits into 16 linear
/// sub-buckets, so percentile lookups resolve to ~6% instead of the 2x
/// a pure log2 bucketing gives (which collapsed p50/p95/p99 to one
/// value in BENCH_server.json). `PercentileNanos` keeps the
/// max-reporting semantics: it returns the rank's bucket upper bound
/// clamped to the observed max.
class LatencyHistogram {
 public:
  static constexpr int kSubBuckets = 16;    ///< linear slices per octave
  static constexpr int kFirstOctave = 4;    ///< 2^4 = first split octave
  static constexpr int kOctaves = 64 - kFirstOctave;
  static constexpr int kBuckets = kSubBuckets + kOctaves * kSubBuckets;

  LatencyHistogram() = default;
  /// Copy = relaxed-load snapshot of the source (exact at quiescence,
  /// approximately consistent while writers are live).
  LatencyHistogram(const LatencyHistogram& other) { CopyFrom(other); }
  LatencyHistogram& operator=(const LatencyHistogram& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }

  /// Thread-safe; relaxed atomics (counters, no ordering needed).
  void Record(uint64_t nanos);

  /// Adds `other`'s samples into this histogram (per-thread shard
  /// merge-on-scrape; `other` may have live writers).
  void Merge(const LatencyHistogram& other);

  /// Total samples = sum of the bucket counts. Deriving it instead of
  /// keeping a second counter keeps the Prometheus invariant
  /// `+Inf bucket == _count` exact even under concurrent writers.
  uint64_t count() const;
  uint64_t max_nanos() const {
    return max_nanos_.load(std::memory_order_relaxed);
  }
  /// Sum of every recorded sample, saturating at uint64 max (a u64-max
  /// sample must not wrap the sum back to small values).
  uint64_t sum_nanos() const {
    return sum_nanos_.load(std::memory_order_relaxed);
  }
  /// Relaxed-load snapshot of the per-bucket counts.
  std::vector<uint64_t> bucket_counts() const;

  /// Inclusive upper bound (in nanos) of bucket `index`; the top bucket
  /// is open-ended and reports uint64 max.
  static uint64_t BucketUpperNanos(int index);
  /// All `kBuckets` upper bounds, for Prometheus exposition.
  static std::vector<uint64_t> BucketUpperBounds();

  /// Upper bound of the bucket holding the `p`-quantile sample
  /// (p in [0, 1]), clamped to the observed max; 0 when empty.
  uint64_t PercentileNanos(double p) const;

 private:
  static int BucketIndex(uint64_t nanos);
  void CopyFrom(const LatencyHistogram& other);

  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> max_nanos_{0};
  std::atomic<uint64_t> sum_nanos_{0};
};

/// \brief All server counters. Atomics: each counter has exactly one
/// logical writer stage but is read concurrently by STATS handlers on
/// I/O threads and the /metrics scraper on the main thread. Copying
/// takes a relaxed-load snapshot (what `QueryServer::MetricsSnapshot`
/// hands to benches).
struct ServerMetrics {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_closed{0};
  std::atomic<uint64_t> frames_received{0};
  std::atomic<uint64_t> malformed_frames{0};
  std::atomic<uint64_t> queries_received{0};
  std::atomic<uint64_t> queries_rejected{0};
  std::atomic<uint64_t> queries_executed{0};
  std::atomic<uint64_t> batches_executed{0};
  std::atomic<uint64_t> results_sent{0};
  std::atomic<uint64_t> errors_sent{0};
  /// Requests whose end-to-end time crossed the slow-query threshold
  /// (0 when the threshold is disabled).
  std::atomic<uint64_t> slow_queries{0};
  /// Total wall clock spent encoding RESULT frames.
  std::atomic<int64_t> serialize_nanos_total{0};
  /// Request arrival (frame fully parsed) to response enqueue; recorded
  /// by the serialization thread (and I/O threads for inline replies).
  LatencyHistogram request_latency;
  /// Event-loop stall: wall clock from an epoll wakeup to the loop
  /// re-entering epoll, recorded while the thread owns sessions. The
  /// live server keeps one shard per I/O thread and merges them into
  /// this field only in snapshots/scrapes; on the quiesced object this
  /// holds the merged total.
  LatencyHistogram loop_stall;
  /// Engine stats accumulated across every executed batch (scheduler
  /// thread, in execution order — deterministic), including page-I/O
  /// counters when the backend is paged. Guarded by `engine_mu_`: use
  /// `MergeEngine`/`EngineTotal` — the annotation makes an unlocked
  /// direct read a compile error under `-Wthread-safety`.
  PhaseStats engine_total GUARDED_BY(engine_mu_);

  ServerMetrics() = default;
  ServerMetrics(const ServerMetrics& other) { CopyFrom(other); }
  ServerMetrics& operator=(const ServerMetrics& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }

  /// Folds one executed batch's stats into `engine_total` (thread-safe).
  void MergeEngine(const PhaseStats& stats) EXCLUDES(engine_mu_) {
    common::MutexLock lock(engine_mu_);
    engine_total.Merge(stats);
  }
  /// Consistent copy of `engine_total` (thread-safe).
  PhaseStats EngineTotal() const EXCLUDES(engine_mu_) {
    common::MutexLock lock(engine_mu_);
    return engine_total;
  }

  /// Saturating: a double-counted close must read as 0 active
  /// connections, not wrap to 2^64 - k (counters are self-checked in
  /// the STATS tests).
  uint64_t connections_active() const {
    const uint64_t accepted =
        connections_accepted.load(std::memory_order_relaxed);
    const uint64_t closed =
        connections_closed.load(std::memory_order_relaxed);
    return closed > accepted ? 0 : accepted - closed;
  }
  double CoalesceFactor() const {
    const uint64_t batches =
        batches_executed.load(std::memory_order_relaxed);
    return batches == 0
               ? 0.0
               : static_cast<double>(
                     queries_executed.load(std::memory_order_relaxed)) /
                     static_cast<double>(batches);
  }

  ServerStatsWire ToWire() const;

 private:
  void CopyFrom(const ServerMetrics& other);

  mutable common::Mutex engine_mu_;
};

}  // namespace octopus::server

#endif  // OCTOPUS_SERVER_METRICS_H_
