// Copyright 2026 The OCTOPUS Reproduction Authors
#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace octopus::server {
namespace {

constexpr size_t kReadChunkBytes = 64 * 1024;

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

/// Per-connection state: socket, framing buffer, pending writes.
struct QueryServer::Session {
  uint64_t id = 0;
  int fd = -1;
  bool handshaken = false;
  /// Last instant the session demonstrably made progress — the peer
  /// delivered bytes (accept time initially), a queued request of its
  /// was dispatched, or an inline verb (STEP, PIN, historical query)
  /// finished executing; drives the idle/handshake timeout. Advancing
  /// it at dispatch, not only at receipt, keeps a session that waited
  /// out a slow coalescing window from being condemned the moment its
  /// result is delivered.
  int64_t last_activity_nanos = 0;
  /// Epochs this session pinned (id -> pin count); every remaining pin
  /// is released when the session closes, however it dies.
  std::map<uint64_t, uint32_t> pinned_epochs;
  /// Set after a fatal protocol error: pending output (the error frame)
  /// is flushed, further input is ignored, then the socket closes.
  bool close_after_flush = false;
  /// Peer sent EOF (or the read side failed). Frames already buffered
  /// are still parsed and their responses delivered; the session closes
  /// once nothing is pending for it.
  bool read_closed = false;
  Buffer in;           ///< received, not yet parsed
  Buffer out;          ///< encoded, not yet sent
  size_t out_offset = 0;  ///< bytes of `out` already sent

  bool WantsWrite() const { return out_offset < out.size(); }
};

QueryServer::QueryServer(std::unique_ptr<VersionedBackend> backend,
                         ServerOptions options)
    : backend_(std::move(backend)),
      options_(std::move(options)),
      scheduler_(options_.scheduler) {}

QueryServer::~QueryServer() {
  for (auto& [id, session] : sessions_) {
    if (session->fd >= 0) close(session->fd);
  }
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_fd_read_ >= 0) close(wake_fd_read_);
  if (wake_fd_write_ >= 0) close(wake_fd_write_);
}

int64_t QueryServer::NowNanos() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status QueryServer::Start() {
  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) return Errno("pipe");
  wake_fd_read_ = pipe_fds[0];
  wake_fd_write_ = pipe_fds[1];
  if (!SetNonBlocking(wake_fd_read_) || !SetNonBlocking(wake_fd_write_)) {
    return Errno("fcntl(wake pipe)");
  }
  return Listen();
}

Status QueryServer::Listen() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("bind " + options_.bind_address + ":" +
                 std::to_string(options_.port));
  }
  if (listen(listen_fd_, options_.backlog) != 0) return Errno("listen");
  if (!SetNonBlocking(listen_fd_)) return Errno("fcntl(listener)");

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    return Errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
  return Status::OK();
}

void QueryServer::Stop() {
  stop_requested_.store(true, std::memory_order_release);
  if (wake_fd_write_ >= 0) {
    const char byte = 1;
    // Best effort: a full pipe already guarantees a pending wakeup.
    [[maybe_unused]] const ssize_t n = write(wake_fd_write_, &byte, 1);
  }
}

Status QueryServer::Run() {
  std::vector<pollfd> fds;
  std::vector<uint64_t> fd_session;  // session id per pollfd slot

  while (!stop_requested_.load(std::memory_order_acquire)) {
    const int64_t now = NowNanos();
    // Condemn idle sessions BEFORE building the poll set, so their
    // TIMEOUT error frames register for writing in this very round.
    const int64_t idle_in = EnforceIdleDeadlines(now);
    fds.clear();
    fd_session.clear();
    fds.push_back({wake_fd_read_, POLLIN, 0});
    fd_session.push_back(0);
    const bool accepting = sessions_.size() < options_.max_connections &&
                           now >= accept_retry_at_nanos_;
    if (accepting) {
      fds.push_back({listen_fd_, POLLIN, 0});
      fd_session.push_back(0);
    }
    for (const auto& [id, session] : sessions_) {
      short events = 0;
      // Backpressure: stop reading (and thus admitting) from a session
      // whose responses it is not consuming.
      if (!session->close_after_flush && !session->read_closed &&
          session->out.size() - session->out_offset <
              options_.max_session_out_bytes) {
        events |= POLLIN;
      }
      if (session->WantsWrite()) events |= POLLOUT;
      fds.push_back({session->fd, events, 0});
      fd_session.push_back(id);
    }

    int64_t due = scheduler_.NanosUntilDue(now);
    if (!accepting && accept_retry_at_nanos_ > now) {
      // Wake in time to resume accepting even if nothing else happens.
      const int64_t retry_in = accept_retry_at_nanos_ - now;
      due = due < 0 ? retry_in : std::min(due, retry_in);
    }
    if (idle_in >= 0) due = due < 0 ? idle_in : std::min(due, idle_in);
    int timeout_ms = -1;
    if (due >= 0) {
      // Round up so we never spin on a sub-millisecond remainder.
      timeout_ms = static_cast<int>((due + 999'999) / 1'000'000);
    }

    const int ready = poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }

    for (size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      if (fds[i].fd == wake_fd_read_) {
        char buf[64];
        while (read(wake_fd_read_, buf, sizeof(buf)) > 0) {
        }
      } else if (fds[i].fd == listen_fd_ && accepting) {
        AcceptNew();
      } else if (fd_session[i] != 0) {
        auto it = sessions_.find(fd_session[i]);
        if (it == sessions_.end()) continue;
        Session* session = it->second.get();
        if ((fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
            (fds[i].revents & POLLIN) == 0) {
          closed_scratch_.push_back(session->id);
          continue;
        }
        if ((fds[i].revents & POLLIN) != 0) ReadSession(session);
      }
    }
    for (const uint64_t id : closed_scratch_) CloseSession(id);
    closed_scratch_.clear();

    // Coalescing point: execute every batch whose window has expired
    // (or that hit the size trigger while sockets were drained).
    ExecuteDueBatches(NowNanos());

    // Opportunistic flush of everything with pending output; POLLOUT is
    // only needed when the socket buffer pushes back.
    for (auto& [id, session] : sessions_) {
      if (session->WantsWrite() || session->close_after_flush) {
        FlushSession(session.get());
      }
    }
    for (const uint64_t id : closed_scratch_) CloseSession(id);
    closed_scratch_.clear();
  }

  DrainAndClose();
  return Status::OK();
}

void QueryServer::AcceptNew() {
  while (sessions_.size() < options_.max_connections) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Per-connection failures (peer aborted before we accepted):
      // skip that connection and keep accepting.
      if (errno == ECONNABORTED || errno == ECONNRESET ||
          errno == EPROTO) {
        continue;
      }
      if (errno != EAGAIN && errno != EWOULDBLOCK) {
        // Persistent failure (EMFILE/ENFILE/...): the pending
        // connection stays in the backlog and the listener stays
        // readable, so back off briefly instead of busy-spinning.
        accept_retry_at_nanos_ = NowNanos() + 100'000'000;
      }
      return;
    }
    if (!SetNonBlocking(fd)) {
      close(fd);
      continue;
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto session = std::make_unique<Session>();
    session->id = next_session_id_++;
    session->fd = fd;
    session->last_activity_nanos = NowNanos();
    metrics_.connections_accepted += 1;
    sessions_.emplace(session->id, std::move(session));
  }
}

void QueryServer::ReadSession(Session* session) {
  session->last_activity_nanos = NowNanos();
  while (true) {
    const size_t old_size = session->in.size();
    session->in.resize(old_size + kReadChunkBytes);
    const ssize_t n =
        recv(session->fd, session->in.data() + old_size, kReadChunkBytes, 0);
    if (n > 0) {
      session->in.resize(old_size + static_cast<size_t>(n));
      if (static_cast<size_t>(n) < kReadChunkBytes) break;
      continue;
    }
    session->in.resize(old_size);
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // EOF (or read error): no more input, but frames already buffered
    // in this burst must still be parsed and answered — a peer may
    // legitimately write its requests and half-close while reading.
    session->read_closed = true;
    break;
  }

  // Parse every complete frame accumulated so far.
  size_t consumed = 0;
  while (!session->close_after_flush &&
         session->in.size() - consumed >= kFrameHeaderBytes) {
    const std::span<const uint8_t> rest(session->in.data() + consumed,
                                        session->in.size() - consumed);
    auto header = ParseFrameHeader(rest);
    if (!header.ok()) {
      metrics_.malformed_frames += 1;
      const ErrorCode code =
          header.status().code() == Status::Code::kResourceExhausted
              ? ErrorCode::kFrameTooLarge
              : ErrorCode::kMalformedFrame;
      SendError(session, code, 0, header.status().message(),
                /*close_connection=*/true);
      break;
    }
    const size_t frame_bytes =
        kFrameHeaderBytes + header.Value().payload_bytes;
    if (rest.size() < frame_bytes) break;  // incomplete frame
    metrics_.frames_received += 1;
    HandleFrame(session, header.Value().type,
                rest.subspan(kFrameHeaderBytes,
                             header.Value().payload_bytes));
    consumed += frame_bytes;
  }
  if (consumed > 0) {
    session->in.erase(session->in.begin(),
                      session->in.begin() + static_cast<ptrdiff_t>(consumed));
  }
  // After EOF the session lives only to deliver what it is still owed;
  // with nothing pending anywhere, close now (FlushSession handles the
  // pending cases when they drain).
  if (session->read_closed && !session->close_after_flush &&
      !session->WantsWrite() && !scheduler_.HasPendingFor(session->id)) {
    closed_scratch_.push_back(session->id);
  }
}

void QueryServer::HandleFrame(Session* session, FrameType type,
                              std::span<const uint8_t> payload) {
  if (!session->handshaken) {
    if (type != FrameType::kHello) {
      SendError(session, ErrorCode::kUnexpectedFrame, 0,
                "first frame must be HELLO", true);
      return;
    }
    HelloFrame hello;
    const Status st = ParseHello(payload, &hello);
    if (!st.ok()) {
      metrics_.malformed_frames += 1;
      SendError(session, ErrorCode::kMalformedFrame, 0, st.message(), true);
      return;
    }
    if (hello.magic != kProtocolMagic) {
      SendError(session, ErrorCode::kBadMagic, 0,
                "not an OCTP client", true);
      return;
    }
    if (hello.flags != 0) {
      // Reject now so the reserved field stays usable for future
      // capability negotiation.
      SendError(session, ErrorCode::kMalformedFrame, 0,
                "HELLO reserved flags must be zero", true);
      return;
    }
    if (hello.version != kProtocolVersion) {
      SendError(session, ErrorCode::kVersionMismatch, 0,
                "server speaks protocol version " +
                    std::to_string(kProtocolVersion),
                true);
      return;
    }
    WelcomeFrame welcome;
    welcome.paged = backend_->paged() ? 1 : 0;
    welcome.dynamic = backend_->dynamic() ? 1 : 0;
    welcome.num_vertices = backend_->num_vertices();
    welcome.page_bytes = backend_->page_bytes();
    welcome.max_batch_queries = static_cast<uint32_t>(
        scheduler_.options().max_batch_queries);
    AppendWelcome(&session->out, welcome);
    session->handshaken = true;
    return;
  }

  switch (type) {
    case FrameType::kQueryBatch: {
      PendingRequest request;
      request.session_id = session->id;
      uint64_t epoch = 0;
      const Status st = ParseQueryBatch(payload, &request.request_id,
                                        &request.boxes, &epoch);
      if (!st.ok()) {
        metrics_.malformed_frames += 1;
        SendError(session, ErrorCode::kMalformedFrame, 0, st.message(),
                  true);
        return;
      }
      metrics_.queries_received += request.boxes.size();
      request.arrival_nanos = NowNanos();
      if (epoch != 0) {
        // Historical epoch: executed inline, bypassing the coalescing
        // scheduler — a batch is epoch-consistent, so queries against
        // different epochs can never share a sweep. Pinned repeatable
        // reads are a control-plane workload; the latency-sensitive
        // hot path (epoch 0 = current) still coalesces. Inline is not
        // unbounded, though: the scheduler's exact admission rule
        // applies — counting the live backlog, with the empty-queue
        // exemption — so stamping an epoch on a request is not a way
        // around OVERLOADED backpressure.
        if (scheduler_.HasPending() &&
            scheduler_.pending_queries() + request.boxes.size() >
                scheduler_.options().max_pending_queries) {
          metrics_.queries_rejected += request.boxes.size();
          SendError(session, ErrorCode::kOverloaded, request.request_id,
                    "pending-query limit of " +
                        std::to_string(
                            scheduler_.options().max_pending_queries) +
                        " reached; retry later",
                    /*close_connection=*/false);
          return;
        }
        ExecuteHistorical(session, request, epoch);
        return;
      }
      if (request.boxes.empty()) {
        // Nothing to coalesce: answer an empty batch immediately —
        // still epoch-stamped (every RESULT carries the epoch, even a
        // trivially consistent one).
        BatchStatsWire empty;
        empty.epoch = backend_->CurrentEpoch();
        AppendResult(&session->out, request.request_id, empty, {});
        metrics_.results_sent += 1;
        metrics_.request_latency.Record(0);
        return;
      }
      const size_t num_queries = request.boxes.size();
      const uint64_t request_id = request.request_id;
      if (!scheduler_.Enqueue(std::move(request))) {
        metrics_.queries_rejected += num_queries;
        SendError(session, ErrorCode::kOverloaded, request_id,
                  "pending-query limit of " +
                      std::to_string(
                          scheduler_.options().max_pending_queries) +
                      " reached; retry later",
                  false);
      }
      return;
    }
    case FrameType::kStatsRequest: {
      if (!payload.empty()) {
        metrics_.malformed_frames += 1;
        SendError(session, ErrorCode::kMalformedFrame, 0,
                  "STATS_REQUEST payload must be empty", true);
        return;
      }
      ServerStatsWire wire = metrics_.ToWire();
      // Steps may be applied by a stepper thread, bypassing the loop's
      // counters; the backend's epoch is the authoritative count.
      wire.steps_applied = backend_->CurrentEpoch().step;
      AppendStats(&session->out, wire);
      return;
    }
    case FrameType::kStep: {
      StepFrame step;
      const Status st = ParseStep(payload, &step);
      if (!st.ok()) {
        metrics_.malformed_frames += 1;
        SendError(session, ErrorCode::kMalformedFrame, 0, st.message(),
                  true);
        return;
      }
      if (step.steps > 0 && !backend_->dynamic()) {
        SendError(session, ErrorCode::kUnexpectedFrame, 0,
                  "STEP with steps > 0 requires a bound deformer "
                  "(serve --deform)",
                  true);
        return;
      }
      // Applied inline on the loop thread: a control-plane verb, cheap
      // relative to the batches it interleaves with (steps normally
      // come from the --step-every stepper thread instead).
      for (uint32_t i = 0; i < step.steps; ++i) backend_->AdvanceStep();
      // The steps themselves were this session's activity: a large
      // STEP must not eat into its own idle budget.
      session->last_activity_nanos = NowNanos();
      AppendCurrentEpochInfo(session, backend_->CurrentEpoch());
      return;
    }
    case FrameType::kPinEpoch:
    case FrameType::kUnpinEpoch: {
      PinEpochFrame pin;
      const Status st = ParsePinEpoch(payload, &pin);
      if (!st.ok()) {
        metrics_.malformed_frames += 1;
        SendError(session, ErrorCode::kMalformedFrame, 0, st.message(),
                  true);
        return;
      }
      if (type == FrameType::kPinEpoch) {
        auto pinned = backend_->PinEpoch(pin.epoch);
        if (!pinned.ok()) {
          SendError(session, ErrorCode::kEpochGone, 0,
                    pinned.status().message(),
                    /*close_connection=*/false);
          return;
        }
        session->pinned_epochs[pinned.Value().epoch] += 1;
        AppendCurrentEpochInfo(session, pinned.Value());
        return;
      }
      // UNPIN: only pins this session actually holds may be released —
      // one session must not be able to strip another's exemptions.
      auto it = session->pinned_epochs.find(pin.epoch);
      if (it == session->pinned_epochs.end()) {
        SendError(session, ErrorCode::kEpochGone, 0,
                  "epoch " + std::to_string(pin.epoch) +
                      " is not pinned by this session",
                  /*close_connection=*/false);
        return;
      }
      const Status unpinned = backend_->UnpinEpoch(pin.epoch);
      if (--it->second == 0) session->pinned_epochs.erase(it);
      if (!unpinned.ok()) {
        SendError(session, ErrorCode::kEpochGone, 0,
                  unpinned.message(), /*close_connection=*/false);
        return;
      }
      // Answered with the *current* epoch (the released one may have
      // been evicted by the release itself).
      AppendCurrentEpochInfo(session, backend_->CurrentEpoch());
      return;
    }
    default:
      SendError(session, ErrorCode::kUnexpectedFrame, 0,
                "frame type not valid from a client in this state", true);
      return;
  }
}

void QueryServer::AppendCurrentEpochInfo(Session* session,
                                         engine::EpochInfo epoch) {
  EpochInfoWire info;
  info.epoch = epoch.epoch;
  info.step = epoch.step;
  info.dynamic = backend_->dynamic() ? 1 : 0;
  info.deformer_kind = static_cast<uint8_t>(backend_->deformer_kind());
  info.last_step_pages_rewritten = backend_->last_step_pages_rewritten();
  AppendEpochInfo(&session->out, info);
}

void QueryServer::ExecuteHistorical(Session* session,
                                    const PendingRequest& request,
                                    uint64_t epoch) {
  engine::QueryBatchResult results;
  PhaseStats stats;
  const Status st = backend_->ExecuteAt(epoch, request.boxes, &results,
                                        &stats);
  if (!st.ok()) {
    session->last_activity_nanos = NowNanos();
    metrics_.queries_rejected += request.boxes.size();
    SendError(session, ErrorCode::kEpochGone, request.request_id,
              st.message(), /*close_connection=*/false);
    return;
  }
  metrics_.batches_executed += 1;
  metrics_.queries_executed += request.boxes.size();
  metrics_.engine_total.Merge(stats);
  // Package as a completed request and reuse the one delivery tail
  // (frame-cap handling, counters, latency, activity refresh).
  CompletedRequest done;
  done.session_id = request.session_id;
  done.request_id = request.request_id;
  done.arrival_nanos = request.arrival_nanos;
  done.stats = BatchStatsWire::FromPhaseStats(
      stats, static_cast<uint32_t>(request.boxes.size()), 1,
      results.epoch);
  done.per_query = std::move(results.per_query);
  DeliverResult(done, NowNanos());
}

void QueryServer::SendError(Session* session, ErrorCode code,
                            uint64_t request_id, const std::string& message,
                            bool close_connection) {
  ErrorFrame error;
  error.code = code;
  error.request_id = request_id;
  error.message = message;
  AppendError(&session->out, error);
  metrics_.errors_sent += 1;
  if (close_connection) session->close_after_flush = true;
}

void QueryServer::DeliverResult(const CompletedRequest& done,
                                int64_t done_at) {
  auto it = sessions_.find(done.session_id);
  if (it == sessions_.end()) return;  // client left mid-flight
  Session* session = it->second.get();
  // Dispatch counts as activity: a request that waited out a slow
  // coalescing window must not leave its session condemnable the
  // instant the pending-exemption lapses (the idle clock restarts at
  // delivery, not at the long-gone receive).
  session->last_activity_nanos = done_at;
  if (ResultPayloadBytes(done.per_query) > kMaxFramePayloadBytes) {
    // The result set cannot travel in one frame: answer with a typed,
    // request-scoped error instead of desynchronizing the stream.
    SendError(session, ErrorCode::kInternal, done.request_id,
              "result set exceeds the " +
                  std::to_string(kMaxFramePayloadBytes) +
                  "-byte frame cap; split the query batch",
              /*close_connection=*/false);
  } else {
    AppendResult(&session->out, done.request_id, done.stats,
                 done.per_query);
    metrics_.results_sent += 1;
  }
  metrics_.request_latency.Record(
      static_cast<uint64_t>(done_at - done.arrival_nanos));
}

void QueryServer::ExecuteDueBatches(int64_t now_nanos) {
  while (scheduler_.ShouldExecute(now_nanos)) {
    completed_scratch_.clear();
    scheduler_.ExecuteReady(backend_.get(), &completed_scratch_,
                            &metrics_);
    const int64_t done_at = NowNanos();
    for (const CompletedRequest& done : completed_scratch_) {
      DeliverResult(done, done_at);
    }
  }
}

int64_t QueryServer::EnforceIdleDeadlines(int64_t now_nanos) {
  if (options_.idle_timeout_nanos <= 0) return -1;
  int64_t next_in = -1;
  for (auto& [id, session] : sessions_) {
    // A session already condemned, half-closed, or waiting on a result
    // we owe it is not idling at our expense.
    if (session->close_after_flush || session->read_closed ||
        scheduler_.HasPendingFor(id)) {
      continue;
    }
    const int64_t deadline =
        session->last_activity_nanos + options_.idle_timeout_nanos;
    if (deadline <= now_nanos) {
      SendError(session.get(), ErrorCode::kTimeout, 0,
                session->handshaken
                    ? "idle timeout: no frames received"
                    : "handshake timeout: no HELLO received",
                /*close_connection=*/true);
    } else if (next_in < 0 || deadline - now_nanos < next_in) {
      next_in = deadline - now_nanos;
    }
  }
  return next_in;
}

void QueryServer::FlushSession(Session* session) {
  // Compact the sent prefix once it grows past a chunk, so a client
  // that drains responses slowly (buffer never fully empty) cannot
  // accumulate already-sent bytes without bound.
  if (session->out_offset >= kReadChunkBytes) {
    session->out.erase(session->out.begin(),
                       session->out.begin() +
                           static_cast<ptrdiff_t>(session->out_offset));
    session->out_offset = 0;
  }
  while (session->WantsWrite()) {
    const ssize_t n = send(session->fd, session->out.data() +
                               session->out_offset,
                           session->out.size() - session->out_offset,
                           MSG_NOSIGNAL);
    if (n > 0) {
      session->out_offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    closed_scratch_.push_back(session->id);
    return;
  }
  session->out.clear();
  session->out_offset = 0;
  if (session->close_after_flush ||
      (session->read_closed &&
       !scheduler_.HasPendingFor(session->id))) {
    closed_scratch_.push_back(session->id);
  }
}

void QueryServer::CloseSession(uint64_t session_id) {
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  scheduler_.DropSession(session_id);
  // A dead session's pins die with it: release every count so the
  // epochs it was holding become evictable again.
  for (const auto& [epoch, count] : it->second->pinned_epochs) {
    for (uint32_t i = 0; i < count; ++i) {
      // Best effort — the epoch may already be gone for other reasons.
      (void)backend_->UnpinEpoch(epoch);
    }
  }
  close(it->second->fd);
  sessions_.erase(it);
  metrics_.connections_closed += 1;
}

void QueryServer::DrainAndClose() {
  close(listen_fd_);
  listen_fd_ = -1;

  // Execute everything still pending, ignoring the window — accepted
  // requests get answers even across a shutdown.
  while (scheduler_.HasPending()) {
    completed_scratch_.clear();
    scheduler_.ExecuteReady(backend_.get(), &completed_scratch_,
                            &metrics_);
    const int64_t done_at = NowNanos();
    for (const CompletedRequest& done : completed_scratch_) {
      DeliverResult(done, done_at);
    }
  }

  // Typed goodbye: every surviving session learns WHY the connection is
  // about to close (after any results it is owed, which are already in
  // its buffer) instead of observing a silent EOF. Frames a peer sends
  // from here on are never read, exactly as before.
  for (auto& [id, session] : sessions_) {
    if (session->close_after_flush) continue;  // already condemned, typed
    ErrorFrame error;
    error.code = ErrorCode::kShuttingDown;
    error.message = "server is shutting down";
    AppendError(&session->out, error);
    metrics_.errors_sent += 1;
  }

  // Bounded flush of buffered responses.
  const int64_t deadline = NowNanos() + options_.drain_timeout_nanos;
  std::vector<pollfd> fds;
  std::vector<uint64_t> fd_session;
  while (NowNanos() < deadline) {
    fds.clear();
    fd_session.clear();
    for (auto& [id, session] : sessions_) {
      FlushSession(session.get());
      if (session->WantsWrite()) {
        fds.push_back({session->fd, POLLOUT, 0});
        fd_session.push_back(id);
      }
    }
    for (const uint64_t id : closed_scratch_) CloseSession(id);
    closed_scratch_.clear();
    if (fds.empty()) break;
    const int64_t left_ms = (deadline - NowNanos()) / 1'000'000;
    if (poll(fds.data(), fds.size(), static_cast<int>(left_ms) + 1) < 0 &&
        errno != EINTR) {
      break;
    }
  }

  std::vector<uint64_t> all_ids;
  all_ids.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) all_ids.push_back(id);
  for (const uint64_t id : all_ids) CloseSession(id);
}

}  // namespace octopus::server
