// Copyright 2026 The OCTOPUS Reproduction Authors
#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/timer.h"
#include "obs/metrics_registry.h"

namespace octopus::server {
namespace {

constexpr size_t kReadChunkBytes = 64 * 1024;
/// iovec budget per sendmsg: plenty for one large zero-copy RESULT
/// (2 segments per query) plus a run of small inline frames.
constexpr int kMaxIov = 64;

/// Zero-copy RESULT encoding splices raw `std::vector<VertexId>` bytes
/// onto the wire, which is only the wire format (little-endian u32 ids)
/// when the host matches. Anything else falls back to the copying
/// `AppendResult` — same bytes, one extra memcpy.
constexpr bool kZeroCopyResults =
    std::endian::native == std::endian::little && sizeof(VertexId) == 4;

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

/// Per-connection state. A session lives its whole life on the one I/O
/// thread its fd hashed to, so none of this needs locking — the only
/// cross-thread references are the id-keyed `owner_` map and frames
/// arriving through the owning thread's inbox.
struct QueryServer::Session {
  uint64_t id = 0;
  int fd = -1;
  bool handshaken = false;
  /// Last instant the session demonstrably made progress — the peer
  /// delivered bytes (accept time initially), a pipelined request of
  /// its completed, or an inline verb (STEP, PIN) finished executing;
  /// drives the idle/handshake timeout. Advancing it at completion,
  /// not only at receipt, keeps a session that waited out a slow
  /// coalescing window from being condemned the moment its result is
  /// delivered.
  int64_t last_activity_nanos = 0;
  /// Epochs this session pinned (id -> pin count); every remaining pin
  /// is released when the session closes, however it dies.
  std::map<uint64_t, uint32_t> pinned_epochs;
  /// Set after a fatal protocol error: pending output (the error frame)
  /// is flushed, further input is ignored, then the socket closes.
  bool close_after_flush = false;
  /// Peer sent EOF (or the read side failed). Frames already buffered
  /// are still parsed and their responses delivered; the session closes
  /// once nothing is pending for it.
  bool read_closed = false;
  /// Requests of this session in flight through the scheduler /
  /// serializer pipeline (the threaded replacement for the old loop's
  /// `HasPendingFor`): exempts the session from the idle deadline and
  /// keeps a half-closed session alive until it has been answered.
  uint32_t inflight = 0;
  Buffer in;                ///< received, not yet parsed
  std::deque<OutFrame> out; ///< encoded frames, not yet fully sent
  size_t out_offset = 0;    ///< bytes of `out.front()` already sent
  size_t out_bytes = 0;     ///< unsent wire bytes across `out`
  /// Interest set currently armed in epoll (EPOLL_CTL_MOD only on
  /// change — interest churns far slower than wakeups).
  uint32_t epoll_events = 0;

  bool WantsWrite() const { return out_bytes > 0; }
  void Push(OutFrame frame) {
    out_bytes += frame.WireBytes();
    out.push_back(std::move(frame));
  }
};

/// One I/O thread's world: an epoll instance, the sessions sharded to
/// it, and an eventfd-signalled inbox through which the main thread
/// hands it new connections and the serializer hands it finished
/// frames.
struct QueryServer::IoThread {
  struct Msg {
    enum class Kind : uint8_t { kNewSession, kFrame, kDrain };
    Kind kind = Kind::kNewSession;
    int fd = -1;              ///< kNewSession: the accepted socket
    uint64_t session_id = 0;  ///< kNewSession / kFrame
    OutFrame frame;           ///< kFrame: pre-framed outbound bytes
    /// kFrame: this frame answers a pipelined request — decrement
    /// `inflight` and refresh the idle clock on arrival.
    bool completes_request = false;
  };

  int epoll_fd = -1;
  int event_fd = -1;
  std::thread thread;
  common::Mutex inbox_mu;
  std::deque<Msg> inbox GUARDED_BY(inbox_mu);
  /// This thread's loop-stall shard; merged into snapshots/scrapes on
  /// demand (never into the live `ServerMetrics` — that would double
  /// count across scrapes).
  LatencyHistogram stall;
  std::map<uint64_t, std::unique_ptr<Session>> sessions;
  std::unordered_map<int, Session*> by_fd;
  /// Sessions condemned while iterating; closed in a second phase so
  /// nothing erases from `sessions` mid-walk.
  std::vector<uint64_t> closed_scratch;

  void Post(Msg msg) {
    {
      common::MutexLock lock(inbox_mu);
      inbox.push_back(std::move(msg));
    }
    Signal();
  }
  void Signal() {
    const uint64_t one = 1;
    // Best effort: a saturated eventfd counter is already a wakeup.
    [[maybe_unused]] const ssize_t n =
        write(event_fd, &one, sizeof(one));
  }
};

QueryServer::QueryServer(std::unique_ptr<VersionedBackend> backend,
                         ServerOptions options)
    : backend_(std::move(backend)),
      options_(std::move(options)),
      scheduler_(options_.scheduler),
      recorder_(options_.trace_ring_slots) {
  // Step/epoch lifecycle events come from the backend and its epoch
  // store; point them at the same journal the server emits into.
  if (options_.journal != nullptr) {
    backend_->AttachJournal(options_.journal);
  }
}

QueryServer::~QueryServer() {
  for (auto& io : io_) {
    for (auto& [id, session] : io->sessions) {
      if (session->fd >= 0) close(session->fd);
    }
    if (io->epoll_fd >= 0) close(io->epoll_fd);
    if (io->event_fd >= 0) close(io->event_fd);
  }
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_fd_read_ >= 0) close(wake_fd_read_);
  if (wake_fd_write_ >= 0) close(wake_fd_write_);
}

int64_t QueryServer::NowNanos() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

size_t QueryServer::ResolvedIoThreads() const {
  return static_cast<size_t>(std::clamp(options_.io_threads, 1, 64));
}

Status QueryServer::Start() {
  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) return Errno("pipe");
  wake_fd_read_ = pipe_fds[0];
  wake_fd_write_ = pipe_fds[1];
  if (!SetNonBlocking(wake_fd_read_) || !SetNonBlocking(wake_fd_write_)) {
    return Errno("fcntl(wake pipe)");
  }
  const Status listened = Listen();
  if (!listened.ok()) return listened;
  if (options_.metrics_port >= 0) {
    return metrics_http_.Listen(options_.bind_address,
                                static_cast<uint16_t>(options_.metrics_port));
  }
  return Status::OK();
}

Status QueryServer::Listen() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("bind " + options_.bind_address + ":" +
                 std::to_string(options_.port));
  }
  if (listen(listen_fd_, options_.backlog) != 0) return Errno("listen");
  if (!SetNonBlocking(listen_fd_)) return Errno("fcntl(listener)");

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    return Errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
  return Status::OK();
}

void QueryServer::Stop() {
  stop_requested_.store(true, std::memory_order_release);
  WakeMain();
}

void QueryServer::WakeMain() {
  if (wake_fd_write_ >= 0) {
    const char byte = 1;
    // Best effort: a full pipe already guarantees a pending wakeup.
    [[maybe_unused]] const ssize_t n = write(wake_fd_write_, &byte, 1);
  }
}

Status QueryServer::Run() {
  // Build every I/O thread's epoll/eventfd before anything starts, so
  // a resource failure aborts cleanly with no threads to unwind.
  const size_t n_io = ResolvedIoThreads();
  for (size_t i = 0; i < n_io; ++i) {
    auto io = std::make_unique<IoThread>();
    io->epoll_fd = epoll_create1(EPOLL_CLOEXEC);
    if (io->epoll_fd < 0) return Errno("epoll_create1");
    io->event_fd = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (io->event_fd < 0) {
      io_.push_back(std::move(io));  // dtor closes the epoll fd
      return Errno("eventfd");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = io->event_fd;
    if (epoll_ctl(io->epoll_fd, EPOLL_CTL_ADD, io->event_fd, &ev) != 0) {
      io_.push_back(std::move(io));
      return Errno("epoll_ctl(eventfd)");
    }
    io_.push_back(std::move(io));
  }
  sched_thread_ = std::thread([this] { SchedulerLoop(); });
  ser_thread_ = std::thread([this] { SerializerLoop(); });
  for (size_t i = 0; i < io_.size(); ++i) {
    io_[i]->thread = std::thread([this, i] { IoLoop(i); });
  }

  // The main thread's remaining job: accept, introspection HTTP, and
  // the wake pipe. Sessions and batches belong to the other stages.
  const obs::HttpTextEndpoint::Handler metrics_handler =
      [this](const std::string& path) { return RouteHttp(path); };
  std::vector<pollfd> fds;
  Status status = Status::OK();
  while (!stop_requested_.load(std::memory_order_acquire)) {
    const int64_t now = NowNanos();
    fds.clear();
    fds.push_back({wake_fd_read_, POLLIN, 0});
    const bool accepting =
        active_sessions_.load(std::memory_order_relaxed) <
            options_.max_connections &&
        now >= accept_retry_at_nanos_;
    if (accepting) fds.push_back({listen_fd_, POLLIN, 0});
    if (metrics_http_.listening()) metrics_http_.CollectPollFds(&fds);

    int timeout_ms = -1;
    if (!accepting && accept_retry_at_nanos_ > now) {
      // Wake in time to resume accepting even if nothing else happens.
      // (At the connection cap there is no deadline: the I/O thread
      // that closes a session wakes us through the pipe.)
      timeout_ms = static_cast<int>(
          (accept_retry_at_nanos_ - now + 999'999) / 1'000'000);
    }
    const int ready = poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      status = Errno("poll");
      break;
    }
    for (size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      if (fds[i].fd == wake_fd_read_) {
        char buf[64];
        while (read(wake_fd_read_, buf, sizeof(buf)) > 0) {
        }
      } else if (fds[i].fd == listen_fd_ && accepting) {
        AcceptNew();
      } else if (metrics_http_.OwnsFd(fds[i].fd)) {
        metrics_http_.OnReady(fds[i].fd, fds[i].revents, metrics_handler);
      }
    }
  }

  DrainAndClose();
  return status;
}

void QueryServer::AcceptNew() {
  while (active_sessions_.load(std::memory_order_relaxed) <
         options_.max_connections) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Per-connection failures (peer aborted before we accepted):
      // skip that connection and keep accepting.
      if (errno == ECONNABORTED || errno == ECONNRESET ||
          errno == EPROTO) {
        continue;
      }
      if (errno != EAGAIN && errno != EWOULDBLOCK) {
        // Persistent failure (EMFILE/ENFILE/...): the pending
        // connection stays in the backlog and the listener stays
        // readable, so back off briefly instead of busy-spinning.
        accept_retry_at_nanos_ = NowNanos() + 100'000'000;
      }
      return;
    }
    if (!SetNonBlocking(fd)) {
      close(fd);
      continue;
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const uint64_t id = next_session_id_++;
    const auto owner =
        static_cast<uint32_t>(static_cast<size_t>(fd) % io_.size());
    metrics_.connections_accepted += 1;
    const uint64_t count =
        active_sessions_.fetch_add(1, std::memory_order_relaxed) + 1;
    {
      // Registered before the handoff: the serializer must be able to
      // route to this session the moment the I/O thread knows it.
      common::MutexLock lock(owner_mu_);
      owner_[id] = owner;
    }
    IoThread::Msg msg;
    msg.kind = IoThread::Msg::Kind::kNewSession;
    msg.fd = fd;
    msg.session_id = id;
    io_[owner]->Post(std::move(msg));
    Journal(obs::EventKind::kSessionOpened, 0, id, count);
  }
}

void QueryServer::IoLoop(size_t index) {
  IoThread& io = *io_[index];
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  // Instant the last epoll_wait returned; -1 before the first wakeup.
  int64_t last_wake_nanos = -1;
  bool draining = false;

  while (!draining) {
    const int64_t now = NowNanos();
    // Condemn idle sessions BEFORE the flush pass, so their TIMEOUT
    // error frames go out in this very round.
    const int64_t idle_in = EnforceIdleDeadlines(io, now);
    // Opportunistic flush of everything with pending output; EPOLLOUT
    // interest is only needed when the socket buffer pushes back.
    for (auto& [id, session] : io.sessions) {
      if (session->WantsWrite() || session->close_after_flush) {
        FlushSession(io, session.get());
      }
    }
    ProcessClosures(io);
    for (auto& [id, session] : io.sessions) {
      UpdateInterest(io, session.get());
    }

    int timeout_ms = -1;
    if (idle_in >= 0) {
      // Round up so we never spin on a sub-millisecond remainder.
      timeout_ms = static_cast<int>((idle_in + 999'999) / 1'000'000);
    }
    // Loop-stall sample: how long the previous wakeup kept this thread
    // away from epoll. Recorded only while it owns sessions — with no
    // one connected a slow iteration stalls nobody.
    if (last_wake_nanos >= 0 && !io.sessions.empty()) {
      io.stall.Record(static_cast<uint64_t>(NowNanos() - last_wake_nanos));
    }
    const int ready = epoll_wait(io.epoll_fd, events, kMaxEvents,
                                 timeout_ms);
    last_wake_nanos = NowNanos();
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable; fall through to the drain
    }

    ProcessInbox(io, &draining);
    for (int i = 0; i < ready; ++i) {
      const int fd = events[i].data.fd;
      if (fd == io.event_fd) {
        uint64_t counter = 0;
        while (read(io.event_fd, &counter, sizeof(counter)) > 0) {
        }
        continue;
      }
      auto it = io.by_fd.find(fd);
      if (it == io.by_fd.end()) continue;
      Session* session = it->second;
      const uint32_t revents = events[i].events;
      if ((revents & (EPOLLERR | EPOLLHUP)) != 0 &&
          (revents & EPOLLIN) == 0) {
        io.closed_scratch.push_back(session->id);
        continue;
      }
      if ((revents & EPOLLIN) != 0) ReadSession(io, session);
      // EPOLLOUT needs no handler: the next iteration's flush pass
      // runs before this thread can sleep again.
    }
    ProcessClosures(io);
  }

  DrainIoThread(io);
}

void QueryServer::ProcessInbox(IoThread& io, bool* draining) {
  std::deque<IoThread::Msg> msgs;
  {
    common::MutexLock lock(io.inbox_mu);
    msgs.swap(io.inbox);
  }
  for (IoThread::Msg& msg : msgs) {
    switch (msg.kind) {
      case IoThread::Msg::Kind::kNewSession: {
        auto session = std::make_unique<Session>();
        session->id = msg.session_id;
        session->fd = msg.fd;
        session->last_activity_nanos = NowNanos();
        session->epoll_events = EPOLLIN;
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = msg.fd;
        epoll_ctl(io.epoll_fd, EPOLL_CTL_ADD, msg.fd, &ev);
        io.by_fd[msg.fd] = session.get();
        io.sessions.emplace(msg.session_id, std::move(session));
        break;
      }
      case IoThread::Msg::Kind::kFrame: {
        auto it = io.sessions.find(msg.session_id);
        if (it == io.sessions.end()) break;  // session died mid-flight
        Session* session = it->second.get();
        if (msg.completes_request) {
          if (session->inflight > 0) session->inflight -= 1;
          // Completion counts as activity: a request that waited out a
          // slow coalescing window must not leave its session
          // condemnable the instant the in-flight exemption lapses.
          session->last_activity_nanos = NowNanos();
        }
        session->Push(std::move(msg.frame));
        break;
      }
      case IoThread::Msg::Kind::kDrain:
        // Process everything already in this swap (frames ahead of the
        // token must still be delivered), then leave the event loop.
        *draining = true;
        break;
    }
  }
}

void QueryServer::ReadSession(IoThread& io, Session* session) {
  session->last_activity_nanos = NowNanos();
  while (true) {
    const size_t old_size = session->in.size();
    session->in.resize(old_size + kReadChunkBytes);
    const ssize_t n =
        recv(session->fd, session->in.data() + old_size, kReadChunkBytes, 0);
    if (n > 0) {
      session->in.resize(old_size + static_cast<size_t>(n));
      if (static_cast<size_t>(n) < kReadChunkBytes) break;
      continue;
    }
    session->in.resize(old_size);
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // EOF (or read error): no more input, but frames already buffered
    // in this burst must still be parsed and answered — a peer may
    // legitimately write its requests and half-close while reading.
    session->read_closed = true;
    break;
  }

  // Parse every complete frame accumulated so far.
  size_t consumed = 0;
  while (!session->close_after_flush &&
         session->in.size() - consumed >= kFrameHeaderBytes) {
    const std::span<const uint8_t> rest(session->in.data() + consumed,
                                        session->in.size() - consumed);
    auto header = ParseFrameHeader(rest);
    if (!header.ok()) {
      metrics_.malformed_frames += 1;
      const ErrorCode code =
          header.status().code() == Status::Code::kResourceExhausted
              ? ErrorCode::kFrameTooLarge
              : ErrorCode::kMalformedFrame;
      SendError(session, code, 0, header.status().message(),
                /*close_connection=*/true);
      break;
    }
    const size_t frame_bytes =
        kFrameHeaderBytes + header.Value().payload_bytes;
    if (rest.size() < frame_bytes) break;  // incomplete frame
    metrics_.frames_received += 1;
    HandleFrame(session, header.Value().type,
                rest.subspan(kFrameHeaderBytes,
                             header.Value().payload_bytes));
    consumed += frame_bytes;
  }
  if (consumed > 0) {
    session->in.erase(session->in.begin(),
                      session->in.begin() + static_cast<ptrdiff_t>(consumed));
  }
  // After EOF the session lives only to deliver what it is still owed;
  // with nothing pending anywhere, close now (FlushSession handles the
  // pending cases when they drain).
  if (session->read_closed && !session->close_after_flush &&
      !session->WantsWrite() && session->inflight == 0) {
    io.closed_scratch.push_back(session->id);
  }
}

void QueryServer::HandleFrame(Session* session, FrameType type,
                              std::span<const uint8_t> payload) {
  if (!session->handshaken) {
    if (type != FrameType::kHello) {
      SendError(session, ErrorCode::kUnexpectedFrame, 0,
                "first frame must be HELLO", true);
      return;
    }
    HelloFrame hello;
    const Status st = ParseHello(payload, &hello);
    if (!st.ok()) {
      metrics_.malformed_frames += 1;
      SendError(session, ErrorCode::kMalformedFrame, 0, st.message(), true);
      return;
    }
    if (hello.magic != kProtocolMagic) {
      SendError(session, ErrorCode::kBadMagic, 0,
                "not an OCTP client", true);
      return;
    }
    if (hello.flags != 0) {
      // Reject now so the reserved field stays usable for future
      // capability negotiation.
      SendError(session, ErrorCode::kMalformedFrame, 0,
                "HELLO reserved flags must be zero", true);
      return;
    }
    if (hello.version != kProtocolVersion) {
      SendError(session, ErrorCode::kVersionMismatch, 0,
                "server speaks protocol version " +
                    std::to_string(kProtocolVersion),
                true);
      return;
    }
    WelcomeFrame welcome;
    welcome.paged = backend_->paged() ? 1 : 0;
    welcome.dynamic = backend_->dynamic() ? 1 : 0;
    welcome.num_vertices = backend_->num_vertices();
    welcome.page_bytes = backend_->page_bytes();
    // Read the server's own immutable copy, not scheduler_.options():
    // the scheduler is sched_mu_-guarded and this runs on an I/O
    // thread without the lock (found by the thread-safety audit — the
    // read was benign, the discipline violation was not).
    welcome.max_batch_queries = static_cast<uint32_t>(
        options_.scheduler.max_batch_queries);
    OutFrame frame;
    AppendWelcome(&frame.bytes, welcome);
    session->Push(std::move(frame));
    session->handshaken = true;
    return;
  }

  switch (type) {
    case FrameType::kQueryBatch: {
      PendingRequest request;
      request.session_id = session->id;
      uint64_t epoch = 0;
      const Status st =
          ParseQueryBatch(payload, &request.request_id, &request.boxes,
                          &epoch, &request.client_span_id);
      if (!st.ok()) {
        metrics_.malformed_frames += 1;
        SendError(session, ErrorCode::kMalformedFrame, 0, st.message(),
                  true);
        return;
      }
      metrics_.queries_received += request.boxes.size();
      request.arrival_nanos = NowNanos();
      const size_t num_queries = request.boxes.size();
      const uint64_t request_id = request.request_id;

      // Admission happens under the scheduler lock — which the
      // scheduler thread holds for the whole of a batch execution, so
      // (exactly like the old single loop, where execution blocked the
      // loop) the pending queue cannot grow past its window while a
      // batch runs.
      enum class Verdict : uint8_t {
        kAdmitted,
        kEmptyInline,
        kOverloaded,
        kShuttingDown,
      };
      Verdict verdict;
      {
        common::MutexLock lock(sched_mu_);
        if (sched_closed_) {
          // The scheduler already drained and exited; nothing would
          // ever execute this request.
          verdict = Verdict::kShuttingDown;
        } else if (epoch != 0) {
          // Historical epoch: kept out of the coalescing queue — a
          // batch is epoch-consistent, so queries against different
          // epochs can never share a sweep. Pinned repeatable reads
          // are a control-plane workload; the latency-sensitive hot
          // path (epoch 0 = current) still coalesces. Not unbounded,
          // though: the scheduler's exact admission rule applies —
          // counting the live backlog, with the empty-queue exemption
          // — so stamping an epoch on a request is not a way around
          // OVERLOADED backpressure.
          if (scheduler_.HasPending() &&
              scheduler_.pending_queries() + num_queries >
                  scheduler_.options().max_pending_queries) {
            verdict = Verdict::kOverloaded;
          } else {
            immediate_.push_back({std::move(request), epoch});
            session->inflight += 1;
            verdict = Verdict::kAdmitted;
          }
        } else if (request.boxes.empty()) {
          verdict = Verdict::kEmptyInline;
        } else if (scheduler_.Enqueue(std::move(request))) {
          session->inflight += 1;
          verdict = Verdict::kAdmitted;
        } else {
          verdict = Verdict::kOverloaded;
        }
      }
      switch (verdict) {
        case Verdict::kAdmitted:
          sched_cv_.NotifyOne();
          return;
        case Verdict::kEmptyInline: {
          // Nothing to coalesce: answer an empty batch immediately —
          // still epoch-stamped (every RESULT carries the epoch, even
          // a trivially consistent one).
          BatchStatsWire empty;
          empty.epoch = backend_->CurrentEpoch();
          OutFrame frame;
          AppendResult(&frame.bytes, request_id, empty, {});
          session->Push(std::move(frame));
          metrics_.results_sent += 1;
          metrics_.request_latency.Record(0);
          return;
        }
        case Verdict::kOverloaded: {
          metrics_.queries_rejected += num_queries;
          Journal(obs::EventKind::kOverloadRejected, 0, session->id,
                  request_id, num_queries);
          // options_.scheduler, not scheduler_.options(): this runs
          // after the locked block released sched_mu_.
          SendError(session, ErrorCode::kOverloaded, request_id,
                    "pending-query limit of " +
                        std::to_string(
                            options_.scheduler.max_pending_queries) +
                        " reached; retry later",
                    /*close_connection=*/false);
          return;
        }
        case Verdict::kShuttingDown:
          SendError(session, ErrorCode::kShuttingDown, request_id,
                    "server is shutting down",
                    /*close_connection=*/false);
          return;
      }
      return;
    }
    case FrameType::kStatsRequest: {
      if (!payload.empty()) {
        metrics_.malformed_frames += 1;
        SendError(session, ErrorCode::kMalformedFrame, 0,
                  "STATS_REQUEST payload must be empty", true);
        return;
      }
      ServerStatsWire wire = metrics_.ToWire();
      // Steps may be applied by a stepper thread, bypassing the
      // counters here; the backend's epoch is the authoritative count.
      wire.steps_applied = backend_->CurrentEpoch().step;
      OutFrame frame;
      AppendStats(&frame.bytes, wire);
      session->Push(std::move(frame));
      return;
    }
    case FrameType::kStep: {
      StepFrame step;
      const Status st = ParseStep(payload, &step);
      if (!st.ok()) {
        metrics_.malformed_frames += 1;
        SendError(session, ErrorCode::kMalformedFrame, 0, st.message(),
                  true);
        return;
      }
      if (step.steps > 0 && !backend_->dynamic()) {
        SendError(session, ErrorCode::kUnexpectedFrame, 0,
                  "STEP with steps > 0 requires a bound deformer "
                  "(serve --deform)",
                  true);
        return;
      }
      // Applied inline on the I/O thread: a control-plane verb, cheap
      // relative to the batches it interleaves with (steps normally
      // come from the --step-every stepper thread instead; the
      // backend's step path is internally synchronized).
      for (uint32_t i = 0; i < step.steps; ++i) backend_->AdvanceStep();
      // The steps themselves were this session's activity: a large
      // STEP must not eat into its own idle budget.
      session->last_activity_nanos = NowNanos();
      AppendCurrentEpochInfo(session, backend_->CurrentEpoch());
      return;
    }
    case FrameType::kPinEpoch:
    case FrameType::kUnpinEpoch: {
      PinEpochFrame pin;
      const Status st = ParsePinEpoch(payload, &pin);
      if (!st.ok()) {
        metrics_.malformed_frames += 1;
        SendError(session, ErrorCode::kMalformedFrame, 0, st.message(),
                  true);
        return;
      }
      if (type == FrameType::kPinEpoch) {
        auto pinned = backend_->PinEpoch(pin.epoch);
        if (!pinned.ok()) {
          SendError(session, ErrorCode::kEpochGone, 0,
                    pinned.status().message(),
                    /*close_connection=*/false);
          return;
        }
        const uint32_t count =
            (session->pinned_epochs[pinned.Value().epoch] += 1);
        session_pins_.fetch_add(1, std::memory_order_relaxed);
        Journal(obs::EventKind::kEpochPinned, pinned.Value().epoch,
                session->id, count);
        AppendCurrentEpochInfo(session, pinned.Value());
        return;
      }
      // UNPIN: only pins this session actually holds may be released —
      // one session must not be able to strip another's exemptions.
      auto it = session->pinned_epochs.find(pin.epoch);
      if (it == session->pinned_epochs.end()) {
        SendError(session, ErrorCode::kEpochGone, 0,
                  "epoch " + std::to_string(pin.epoch) +
                      " is not pinned by this session",
                  /*close_connection=*/false);
        return;
      }
      const Status unpinned = backend_->UnpinEpoch(pin.epoch);
      const uint32_t left = --it->second;
      session_pins_.fetch_sub(1, std::memory_order_relaxed);
      Journal(obs::EventKind::kEpochUnpinned, pin.epoch, session->id, left);
      if (left == 0) session->pinned_epochs.erase(it);
      if (!unpinned.ok()) {
        SendError(session, ErrorCode::kEpochGone, 0,
                  unpinned.message(), /*close_connection=*/false);
        return;
      }
      // Answered with the *current* epoch (the released one may have
      // been evicted by the release itself).
      AppendCurrentEpochInfo(session, backend_->CurrentEpoch());
      return;
    }
    case FrameType::kTraceDumpRequest: {
      if (!payload.empty()) {
        metrics_.malformed_frames += 1;
        SendError(session, ErrorCode::kMalformedFrame, 0,
                  "TRACE_DUMP_REQUEST payload must be empty", true);
        return;
      }
      TraceDumpWire dump;
      dump.total_recorded = recorder_.total_recorded();
      recorder_.Snapshot(&dump.records);
      // An absurdly large ring must not produce an unsendable frame:
      // keep the newest records that fit under the payload cap
      // (`total_recorded` still reports the lifetime count).
      const size_t max_records =
          (kMaxFramePayloadBytes - 16) / kTraceRecordBytes;
      if (dump.records.size() > max_records) {
        dump.records.erase(
            dump.records.begin(),
            dump.records.end() - static_cast<ptrdiff_t>(max_records));
      }
      OutFrame frame;
      AppendTraceDump(&frame.bytes, dump);
      session->Push(std::move(frame));
      return;
    }
    default:
      SendError(session, ErrorCode::kUnexpectedFrame, 0,
                "frame type not valid from a client in this state", true);
      return;
  }
}

void QueryServer::AppendCurrentEpochInfo(Session* session,
                                         engine::EpochInfo epoch) {
  EpochInfoWire info;
  info.epoch = epoch.epoch;
  info.step = epoch.step;
  info.dynamic = backend_->dynamic() ? 1 : 0;
  info.deformer_kind = static_cast<uint8_t>(backend_->deformer_kind());
  info.last_step_pages_rewritten = backend_->last_step_pages_rewritten();
  OutFrame frame;
  AppendEpochInfo(&frame.bytes, info);
  session->Push(std::move(frame));
}

void QueryServer::SendError(Session* session, ErrorCode code,
                            uint64_t request_id, const std::string& message,
                            bool close_connection) {
  ErrorFrame error;
  error.code = code;
  error.request_id = request_id;
  error.message = message;
  OutFrame frame;
  AppendError(&frame.bytes, error);
  session->Push(std::move(frame));
  metrics_.errors_sent += 1;
  if (close_connection) session->close_after_flush = true;
}

int64_t QueryServer::EnforceIdleDeadlines(IoThread& io, int64_t now_nanos) {
  if (options_.idle_timeout_nanos <= 0) return -1;
  int64_t next_in = -1;
  for (auto& [id, session] : io.sessions) {
    // A session already condemned, half-closed, or waiting on a result
    // we owe it is not idling at our expense.
    if (session->close_after_flush || session->read_closed ||
        session->inflight > 0) {
      continue;
    }
    const int64_t deadline =
        session->last_activity_nanos + options_.idle_timeout_nanos;
    if (deadline <= now_nanos) {
      SendError(session.get(), ErrorCode::kTimeout, 0,
                session->handshaken
                    ? "idle timeout: no frames received"
                    : "handshake timeout: no HELLO received",
                /*close_connection=*/true);
    } else if (next_in < 0 || deadline - now_nanos < next_in) {
      next_in = deadline - now_nanos;
    }
  }
  return next_in;
}

void QueryServer::FlushSession(IoThread& io, Session* session) {
  while (session->WantsWrite()) {
    struct iovec iov[kMaxIov];
    int iov_count = 0;
    size_t offset = session->out_offset;
    for (const OutFrame& frame : session->out) {
      iov_count += BuildFrameIov(frame, offset, iov + iov_count,
                                 kMaxIov - iov_count);
      offset = 0;  // only the front frame is partially sent
      if (iov_count >= kMaxIov) break;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<size_t>(iov_count);
    const ssize_t n = sendmsg(session->fd, &msg, MSG_NOSIGNAL);
    if (n > 0) {
      session->out_bytes -= static_cast<size_t>(n);
      session->out_offset += static_cast<size_t>(n);
      // Retire fully sent frames (this is where zero-copy result
      // vectors finally free).
      while (!session->out.empty() &&
             session->out_offset >= session->out.front().WireBytes()) {
        session->out_offset -= session->out.front().WireBytes();
        session->out.pop_front();
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    io.closed_scratch.push_back(session->id);
    return;
  }
  session->out_offset = 0;
  if (session->close_after_flush ||
      (session->read_closed && session->inflight == 0)) {
    io.closed_scratch.push_back(session->id);
  }
}

void QueryServer::UpdateInterest(IoThread& io, Session* session) {
  uint32_t want = 0;
  // Backpressure: stop reading (and thus admitting) from a session
  // whose responses it is not consuming.
  if (!session->close_after_flush && !session->read_closed &&
      session->out_bytes < options_.max_session_out_bytes) {
    want |= EPOLLIN;
  }
  if (session->WantsWrite()) want |= EPOLLOUT;
  if (want == session->epoll_events) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.fd = session->fd;
  if (epoll_ctl(io.epoll_fd, EPOLL_CTL_MOD, session->fd, &ev) == 0) {
    session->epoll_events = want;
  }
}

void QueryServer::CloseSession(IoThread& io, uint64_t session_id) {
  auto it = io.sessions.find(session_id);
  if (it == io.sessions.end()) return;
  {
    common::MutexLock lock(sched_mu_);
    scheduler_.DropSession(session_id);
    // Historical requests still waiting their turn die with the
    // session too — they would execute for nobody.
    std::erase_if(immediate_, [session_id](const ImmediateRequest& r) {
      return r.request.session_id == session_id;
    });
  }
  // A dead session's pins die with it: release every count so the
  // epochs it was holding become evictable again.
  uint64_t pins_released = 0;
  for (const auto& [epoch, count] : it->second->pinned_epochs) {
    for (uint32_t i = 0; i < count; ++i) {
      // Best effort — the epoch may already be gone for other reasons.
      (void)backend_->UnpinEpoch(epoch);
      ++pins_released;
    }
  }
  if (pins_released > 0) {
    session_pins_.fetch_sub(pins_released, std::memory_order_relaxed);
  }
  epoll_ctl(io.epoll_fd, EPOLL_CTL_DEL, it->second->fd, nullptr);
  close(it->second->fd);
  io.by_fd.erase(it->second->fd);
  io.sessions.erase(it);
  {
    common::MutexLock lock(owner_mu_);
    owner_.erase(session_id);
  }
  metrics_.connections_closed += 1;
  const uint64_t left =
      active_sessions_.fetch_sub(1, std::memory_order_relaxed) - 1;
  Journal(obs::EventKind::kSessionClosed, 0, session_id, left,
          pins_released);
  // The main thread may be parked at the connection cap waiting for a
  // free slot.
  WakeMain();
}

void QueryServer::ProcessClosures(IoThread& io) {
  for (const uint64_t id : io.closed_scratch) CloseSession(io, id);
  io.closed_scratch.clear();
}

void QueryServer::DrainIoThread(IoThread& io) {
  // Typed goodbye: every surviving session learns WHY the connection
  // is about to close (after any results it is owed, which are already
  // in its buffer) instead of observing a silent EOF. Frames a peer
  // sends from here on are never read, exactly as before.
  for (auto& [id, session] : io.sessions) {
    if (session->close_after_flush) continue;  // already condemned, typed
    ErrorFrame error;
    error.code = ErrorCode::kShuttingDown;
    error.message = "server is shutting down";
    OutFrame frame;
    AppendError(&frame.bytes, error);
    session->Push(std::move(frame));
    metrics_.errors_sent += 1;
  }

  // Bounded flush of buffered responses. Condemned and half-closed
  // sessions close as they drain; healthy ones stay open for the main
  // thread to close after kDrainEnded (matching the old loop's journal
  // order).
  const int64_t deadline = NowNanos() + options_.drain_timeout_nanos;
  std::vector<pollfd> fds;
  while (NowNanos() < deadline) {
    for (auto& [id, session] : io.sessions) {
      FlushSession(io, session.get());
    }
    ProcessClosures(io);
    fds.clear();
    for (auto& [id, session] : io.sessions) {
      if (session->WantsWrite()) fds.push_back({session->fd, POLLOUT, 0});
    }
    if (fds.empty()) break;
    const int64_t left_ms = (deadline - NowNanos()) / 1'000'000;
    if (poll(fds.data(), fds.size(), static_cast<int>(left_ms) + 1) < 0 &&
        errno != EINTR) {
      break;
    }
  }
}

void QueryServer::SchedulerLoop() {
  common::MutexLock lock(sched_mu_);
  std::vector<CompletedRequest> completed;
  for (;;) {
    // Historical requests first: they were admitted against the same
    // backlog bound and bypass the window, exactly like the old loop's
    // inline execution.
    if (!immediate_.empty()) {
      ImmediateRequest req = std::move(immediate_.front());
      immediate_.pop_front();
      ExecuteImmediate(std::move(req));
      continue;
    }
    const int64_t now = NowNanos();
    if (scheduler_.HasPending() &&
        (drain_requested_ || scheduler_.ShouldExecute(now))) {
      // Coalescing point. The lock is held across execution on
      // purpose: admission blocks while a batch runs (the old loop's
      // behavior), so the backlog cannot grow past its window
      // mid-batch. During a drain the window is ignored — accepted
      // requests get answers even across a shutdown.
      completed.clear();
      scheduler_.ExecuteReady(backend_.get(), &completed, &metrics_,
                              NowNanos());
      for (CompletedRequest& done : completed) {
        SerTask task;
        task.kind = SerTask::Kind::kResult;
        task.done = std::move(done);
        EnqueueSerTask(std::move(task));
      }
      continue;
    }
    if (drain_requested_) {
      // Everything executed. Tell admission we are gone, then send the
      // drain token down the serializer so it reaches the I/O threads
      // strictly after every result above.
      sched_closed_ = true;
      SerTask token;
      token.kind = SerTask::Kind::kDrain;
      EnqueueSerTask(std::move(token));
      return;
    }
    const int64_t due = scheduler_.NanosUntilDue(now);
    if (due < 0) {
      sched_cv_.Wait(sched_mu_);
    } else {
      sched_cv_.WaitFor(sched_mu_, std::chrono::nanoseconds(due));
    }
  }
}

void QueryServer::ExecuteImmediate(ImmediateRequest req) {
  engine::QueryBatchResult results;
  PhaseStats stats;
  const Status st = backend_->ExecuteAt(req.epoch, req.request.boxes,
                                        &results, &stats);
  if (!st.ok()) {
    metrics_.queries_rejected += req.request.boxes.size();
    SerTask task;
    task.kind = SerTask::Kind::kError;
    task.session_id = req.request.session_id;
    task.request_id = req.request.request_id;
    task.code = ErrorCode::kEpochGone;
    task.message = st.message();
    EnqueueSerTask(std::move(task));
    return;
  }
  metrics_.batches_executed += 1;
  metrics_.queries_executed += req.request.boxes.size();
  metrics_.MergeEngine(stats);
  // Package as a completed request and reuse the one delivery tail
  // (frame-cap handling, counters, latency, activity refresh).
  CompletedRequest done;
  done.session_id = req.request.session_id;
  done.request_id = req.request.request_id;
  done.arrival_nanos = req.request.arrival_nanos;
  done.client_span_id = req.request.client_span_id;
  // Never sat in the coalescing queue, so queue wait is by definition 0.
  done.dispatch_nanos = req.request.arrival_nanos;
  done.stats = BatchStatsWire::FromPhaseStats(
      stats, static_cast<uint32_t>(req.request.boxes.size()), 1,
      results.epoch);
  done.per_query = std::move(results.per_query);
  SerTask task;
  task.kind = SerTask::Kind::kResult;
  task.done = std::move(done);
  EnqueueSerTask(std::move(task));
}

void QueryServer::EnqueueSerTask(SerTask task) {
  {
    common::MutexLock lock(ser_mu_);
    ser_tasks_.push_back(std::move(task));
  }
  ser_cv_.NotifyOne();
}

void QueryServer::SerializerLoop() {
  for (;;) {
    SerTask task;
    {
      common::MutexLock lock(ser_mu_);
      // Explicit predicate loop: a lambda predicate would hide the
      // guarded read from the thread-safety analysis.
      while (ser_tasks_.empty()) ser_cv_.Wait(ser_mu_);
      task = std::move(ser_tasks_.front());
      ser_tasks_.pop_front();
    }
    switch (task.kind) {
      case SerTask::Kind::kResult:
        DeliverCompleted(std::move(task.done));
        break;
      case SerTask::Kind::kError:
        DeliverError(task);
        break;
      case SerTask::Kind::kDrain: {
        // FIFO all the way down: every frame enqueued before this
        // token has already been posted to its I/O thread's inbox, so
        // forwarding the token now guarantees each thread sees its
        // results before it begins its goodbye flush.
        for (auto& io : io_) {
          IoThread::Msg msg;
          msg.kind = IoThread::Msg::Kind::kDrain;
          io->Post(std::move(msg));
        }
        return;
      }
    }
  }
}

void QueryServer::DeliverCompleted(CompletedRequest done) {
  {
    // Client left mid-flight: skip the delivery counters entirely,
    // exactly like the old loop's sessions_ lookup.
    common::MutexLock lock(owner_mu_);
    if (owner_.find(done.session_id) == owner_.end()) return;
  }
  const int64_t done_at = NowNanos();
  // The trace id this delivery WILL record under (0 = tracing off),
  // reserved up front so the RESULT frame can carry it while the
  // record itself still prices the serialization it is part of.
  // Nothing else records in between — this serialization thread is the
  // recorder's only writer.
  BatchStatsWire stats = done.stats;
  stats.trace_id = recorder_.ReserveId();
  const auto num_queries = static_cast<uint32_t>(done.per_query.size());
  uint64_t vertices = 0;
  for (const auto& q : done.per_query) vertices += q.size();

  OutFrame frame;
  int64_t serialize_nanos = 0;
  if (ResultPayloadBytes(done.per_query) > kMaxFramePayloadBytes) {
    // The result set cannot travel in one frame: answer with a typed,
    // request-scoped error instead of desynchronizing the stream.
    ErrorFrame error;
    error.code = ErrorCode::kInternal;
    error.request_id = done.request_id;
    error.message = "result set exceeds the " +
                    std::to_string(kMaxFramePayloadBytes) +
                    "-byte frame cap; split the query batch";
    AppendError(&frame.bytes, error);
    metrics_.errors_sent += 1;
  } else {
    Timer timer;
    if constexpr (kZeroCopyResults) {
      // Encode only header + stats + count words; the id vectors ride
      // the frame by move and hit the socket as iovec segments.
      AppendResultMeta(&frame.bytes, done.request_id, stats,
                       done.per_query);
      frame.vecs = std::move(done.per_query);
    } else {
      AppendResult(&frame.bytes, done.request_id, stats, done.per_query);
    }
    // Clamped ≥ 1: the meta-only encode can beat the clock tick, and a
    // recorded serialization took nonzero time by definition.
    serialize_nanos = std::max<int64_t>(timer.ElapsedNanos(), 1);
    metrics_.results_sent += 1;
  }
  metrics_.serialize_nanos_total += serialize_nanos;
  metrics_.request_latency.Record(
      static_cast<uint64_t>(done_at - done.arrival_nanos));

  // Flight recorder + slow-query promotion. The record is built only
  // when someone will consume it; with tracing off and no threshold
  // this is one predictable branch per delivery.
  const int64_t total_nanos =
      done_at - done.arrival_nanos + serialize_nanos;
  const bool slow = options_.slow_query_nanos > 0 &&
                    total_nanos >= options_.slow_query_nanos;
  if (recorder_.enabled() || slow) {
    obs::QueryTraceRecord rec;
    rec.session_id = done.session_id;
    rec.request_id = done.request_id;
    rec.epoch = done.stats.epoch.epoch;
    rec.epoch_step = done.stats.epoch.step;
    rec.queries = num_queries;
    rec.batch_queries = done.stats.batch_queries;
    rec.batch_requests = done.stats.batch_requests;
    rec.arrival_nanos = done.arrival_nanos;
    rec.queue_wait_nanos =
        done.dispatch_nanos > done.arrival_nanos
            ? done.dispatch_nanos - done.arrival_nanos
            : 0;
    rec.probe_nanos = done.stats.probe_nanos;
    rec.walk_nanos = done.stats.walk_nanos;
    rec.crawl_nanos = done.stats.crawl_nanos;
    rec.merge_nanos = done.stats.merge_nanos;
    rec.serialize_nanos = serialize_nanos;
    rec.total_nanos = total_nanos;
    rec.page_accesses = done.stats.page_hits + done.stats.page_misses;
    rec.lease_hits = done.stats.lease_hits;
    rec.result_vertices = vertices;
    rec.trace_id = recorder_.Record(rec);
    if (slow) {
      metrics_.slow_queries += 1;
      // One structured line per slow request (key=value, greppable;
      // format documented in docs/OBSERVABILITY.md).
      std::fprintf(
          stderr,
          "slow_query trace_id=%llu client_span=%llu session=%llu "
          "request=%llu epoch=%llu step=%u queries=%u batch_queries=%u "
          "batch_requests=%u queue_wait_ms=%.3f probe_ms=%.3f "
          "walk_ms=%.3f crawl_ms=%.3f merge_ms=%.3f serialize_ms=%.3f "
          "total_ms=%.3f page_accesses=%llu lease_hits=%llu "
          "result_vertices=%llu\n",
          static_cast<unsigned long long>(rec.trace_id),
          static_cast<unsigned long long>(done.client_span_id),
          static_cast<unsigned long long>(rec.session_id),
          static_cast<unsigned long long>(rec.request_id),
          static_cast<unsigned long long>(rec.epoch), rec.epoch_step,
          rec.queries, rec.batch_queries, rec.batch_requests,
          rec.queue_wait_nanos / 1e6, rec.probe_nanos / 1e6,
          rec.walk_nanos / 1e6, rec.crawl_nanos / 1e6,
          rec.merge_nanos / 1e6, rec.serialize_nanos / 1e6,
          rec.total_nanos / 1e6,
          static_cast<unsigned long long>(rec.page_accesses),
          static_cast<unsigned long long>(rec.lease_hits),
          static_cast<unsigned long long>(rec.result_vertices));
    }
  }
  DispatchOutbound(done.session_id, std::move(frame), true);
}

void QueryServer::DeliverError(const SerTask& task) {
  {
    common::MutexLock lock(owner_mu_);
    if (owner_.find(task.session_id) == owner_.end()) return;
  }
  ErrorFrame error;
  error.code = task.code;
  error.request_id = task.request_id;
  error.message = task.message;
  OutFrame frame;
  AppendError(&frame.bytes, error);
  metrics_.errors_sent += 1;
  DispatchOutbound(task.session_id, std::move(frame), true);
}

void QueryServer::DispatchOutbound(uint64_t session_id, OutFrame frame,
                                   bool completes_request) {
  uint32_t owner = 0;
  {
    common::MutexLock lock(owner_mu_);
    auto it = owner_.find(session_id);
    if (it == owner_.end()) return;  // session closed; drop the frame
    owner = it->second;
  }
  IoThread::Msg msg;
  msg.kind = IoThread::Msg::Kind::kFrame;
  msg.session_id = session_id;
  msg.frame = std::move(frame);
  msg.completes_request = completes_request;
  io_[owner]->Post(std::move(msg));
}

void QueryServer::DrainAndClose() {
  close(listen_fd_);
  listen_fd_ = -1;
  Journal(obs::EventKind::kDrainBegan, 0, 0,
          active_sessions_.load(std::memory_order_relaxed));

  // Stage the shutdown down the pipeline, in data order: the scheduler
  // executes everything still pending (window ignored) and emits a
  // drain token; the serializer forwards it behind the last result;
  // each I/O thread then says its typed goodbyes and flushes.
  {
    common::MutexLock lock(sched_mu_);
    drain_requested_ = true;
  }
  sched_cv_.NotifyAll();
  if (sched_thread_.joinable()) sched_thread_.join();
  if (ser_thread_.joinable()) ser_thread_.join();
  for (auto& io : io_) {
    if (io->thread.joinable()) io->thread.join();
  }

  // Whatever is left did not drain in time: count the sessions whose
  // buffered output we are about to drop as force-closed.
  uint64_t forced = 0;
  for (const auto& io : io_) {
    for (const auto& [id, session] : io->sessions) {
      if (session->WantsWrite()) ++forced;
    }
  }
  Journal(obs::EventKind::kDrainEnded, 0, 0,
          active_sessions_.load(std::memory_order_relaxed), forced);
  for (auto& io : io_) {
    std::vector<uint64_t> ids;
    ids.reserve(io->sessions.size());
    for (const auto& [id, session] : io->sessions) ids.push_back(id);
    for (const uint64_t id : ids) CloseSession(*io, id);
  }
}

ServerMetrics QueryServer::MetricsSnapshot() const {
  ServerMetrics snapshot = metrics_;
  for (const auto& io : io_) snapshot.loop_stall.Merge(io->stall);
  return snapshot;
}

std::string QueryServer::RenderMetricsText() const {
  obs::MetricsRegistry reg;
  constexpr double kNano = 1e-9;
  const ServerMetrics& m = metrics_;

  reg.AddCounter("octopus_connections_accepted_total",
                 "TCP connections accepted.", m.connections_accepted);
  reg.AddCounter("octopus_connections_closed_total",
                 "TCP connections closed.", m.connections_closed);
  reg.AddGauge("octopus_connections_active", "Currently open sessions.",
               static_cast<double>(m.connections_active()));
  reg.AddGauge("octopus_io_threads",
               "I/O threads serving connections (sharded by fd).",
               static_cast<double>(ResolvedIoThreads()));
  reg.AddCounter("octopus_frames_received_total",
                 "Complete OCTP frames parsed.", m.frames_received);
  reg.AddCounter("octopus_malformed_frames_total",
                 "Frames rejected as malformed.", m.malformed_frames);
  reg.AddCounter("octopus_queries_received_total",
                 "Range queries received in QUERY_BATCH frames.",
                 m.queries_received);
  reg.AddCounter("octopus_queries_rejected_total",
                 "Queries rejected (admission control or EPOCH_GONE).",
                 m.queries_rejected);
  reg.AddCounter("octopus_queries_executed_total",
                 "Queries executed by the engine.", m.queries_executed);
  reg.AddCounter("octopus_batches_executed_total",
                 "Coalesced engine batches executed.", m.batches_executed);
  reg.AddCounter("octopus_results_sent_total", "RESULT frames enqueued.",
                 m.results_sent);
  reg.AddCounter("octopus_errors_sent_total", "ERROR frames enqueued.",
                 m.errors_sent);
  reg.AddCounter("octopus_slow_queries_total",
                 "Requests over the --slow-query-ms threshold.",
                 m.slow_queries);
  reg.AddCounterSeconds(
      "octopus_serialize_seconds_total",
      "Wall clock spent encoding RESULT frames.",
      static_cast<double>(
          m.serialize_nanos_total.load(std::memory_order_relaxed)) *
          kNano);
  const std::vector<uint64_t> bounds =
      LatencyHistogram::BucketUpperBounds();
  reg.AddNanosHistogram(
      "octopus_request_latency_seconds",
      "Request arrival to response enqueue.",
      m.request_latency.bucket_counts(), bounds,
      static_cast<double>(m.request_latency.sum_nanos()) * kNano);
  // The live loop_stall field is empty; the shards are per I/O thread.
  LatencyHistogram stall = m.loop_stall;
  for (const auto& io : io_) stall.Merge(io->stall);
  reg.AddNanosHistogram(
      "octopus_loop_stall_seconds",
      "I/O-loop busy time per wakeup while sessions exist, merged "
      "across I/O threads.",
      stall.bucket_counts(), bounds,
      static_cast<double>(stall.sum_nanos()) * kNano);

  const PhaseStats engine = m.EngineTotal();
  reg.AddCounterSeconds("octopus_engine_probe_seconds_total",
                        "Surface-probe phase wall clock.",
                        static_cast<double>(engine.probe_nanos) * kNano);
  reg.AddCounterSeconds("octopus_engine_walk_seconds_total",
                        "Directed-walk phase wall clock.",
                        static_cast<double>(engine.walk_nanos) * kNano);
  reg.AddCounterSeconds("octopus_engine_crawl_seconds_total",
                        "Crawl phase wall clock.",
                        static_cast<double>(engine.crawl_nanos) * kNano);
  reg.AddCounterSeconds("octopus_engine_merge_seconds_total",
                        "Batch-end stats-merge wall clock.",
                        static_cast<double>(engine.merge_nanos) * kNano);
  const storage::PageIOStats& io_stats = engine.page_io;
  reg.AddCounter("octopus_page_hits_total",
                 "Priced page accesses served by the pool.",
                 io_stats.page_hits);
  reg.AddCounter("octopus_page_misses_total",
                 "Priced page accesses that read from disk.",
                 io_stats.page_misses);
  reg.AddCounter("octopus_page_evictions_total",
                 "Pages evicted during query execution.",
                 io_stats.page_evictions);
  reg.AddCounter("octopus_lease_hits_total",
                 "Reads served free through a held lease.",
                 io_stats.lease_hits);
  reg.AddCounter("octopus_pages_leased_total",
                 "Lease acquisitions (first touch per batch).",
                 io_stats.pages_leased);
  reg.AddCounter("octopus_pages_distinct_total",
                 "Distinct pages touched across batches.",
                 io_stats.pages_distinct);
  reg.AddCounter("octopus_lease_revocations_total",
                 "Leases dropped before batch end (pool pressure).",
                 io_stats.lease_revocations);

  const engine::EpochInfo current = backend_->CurrentEpoch();
  reg.AddGauge("octopus_current_epoch", "Newest published epoch id.",
               static_cast<double>(current.epoch));
  reg.AddCounter("octopus_steps_applied_total",
                 "Simulation steps applied by the backend.", current.step);
  if (const EpochStore* store = backend_->epoch_store()) {
    reg.AddGauge("octopus_epoch_resident_epochs",
                 "Epochs held memory-resident.",
                 static_cast<double>(store->resident_epochs()));
    reg.AddGauge("octopus_epoch_spilled_epochs",
                 "Epochs living only in the spill sidecar.",
                 static_cast<double>(store->spilled_epochs()));
    reg.AddGauge("octopus_epoch_resident_bytes",
                 "Bytes of resident epoch position state.",
                 static_cast<double>(store->resident_bytes()));
    reg.AddCounter("octopus_epochs_evicted_total",
                   "Epochs evicted past the history cap.",
                   store->epochs_evicted());
    reg.AddCounter("octopus_epoch_spill_pages_written_total",
                   "Pages appended to the spill sidecar.",
                   store->spill_pages_written());
    reg.AddCounter("octopus_epoch_spill_bytes_written_total",
                   "Bytes appended to the spill sidecar.",
                   store->spill_bytes_written());
  }
  if (const storage::BufferManager* pool = backend_->buffer_manager()) {
    reg.AddGauge("octopus_buffer_pool_cap_bytes",
                 "Configured buffer-pool byte cap.",
                 static_cast<double>(pool->PoolCapBytes()));
    reg.AddGauge("octopus_buffer_pool_resident_bytes",
                 "Frame bytes actually allocated (high-water).",
                 static_cast<double>(pool->AllocatedBytes()));
    reg.AddCounter("octopus_buffer_pool_evictions_total",
                   "Pool-wide evictions across every consumer.",
                   pool->TotalStats().page_evictions);
  }

  reg.AddGauge("octopus_sessions_pinned_epochs",
               "Outstanding session epoch pins.",
               static_cast<double>(
                   session_pins_.load(std::memory_order_relaxed)));

  reg.AddCounter("octopus_trace_records_total",
                 "Flight-recorder records written (lifetime).",
                 recorder_.total_recorded());
  reg.AddGauge("octopus_trace_ring_records",
               "Records currently held in the flight-recorder ring.",
               static_cast<double>(recorder_.size()));
  if (const obs::EventJournal* journal = options_.journal) {
    reg.AddCounter("octopus_journal_events_total",
                   "Lifecycle events emitted into the journal (lifetime).",
                   journal->total_emitted());
    reg.AddGauge("octopus_journal_ring_events",
                 "Events currently held in the journal ring.",
                 static_cast<double>(journal->size()));
  }
  return reg.ExpositionText();
}

std::string QueryServer::RenderEpochsJson() const {
  std::string out;
  char buf[256];
  const engine::EpochInfo current = backend_->CurrentEpoch();
  const EpochStore* store = backend_->epoch_store();
  std::snprintf(buf, sizeof(buf),
                "{\"dynamic\":%s,\"current_epoch\":%llu,\"current_step\":%u",
                store != nullptr ? "true" : "false",
                static_cast<unsigned long long>(current.epoch),
                current.step);
  out += buf;
  if (store == nullptr) {
    // Static backend: exactly one implicit epoch, nothing retained.
    out += ",\"entries\":[]}";
    return out;
  }
  const EpochStoreView view = store->View();
  uint64_t spill_failed = 0;
  for (const EpochEntryView& entry : view.entries) {
    if (entry.spill_failed) ++spill_failed;
  }
  std::snprintf(
      buf, sizeof(buf),
      ",\"resident_bytes\":%llu,\"evicted_total\":%llu,"
      "\"spill\":{\"enabled\":%s,\"pages_written\":%llu,"
      "\"bytes_written\":%llu,\"failed_epochs\":%llu},\"entries\":[",
      static_cast<unsigned long long>(view.resident_bytes),
      static_cast<unsigned long long>(view.evicted_total),
      view.spill_enabled ? "true" : "false",
      static_cast<unsigned long long>(view.spill_pages_written),
      static_cast<unsigned long long>(view.spill_bytes_written),
      static_cast<unsigned long long>(spill_failed));
  out += buf;
  for (size_t i = 0; i < view.entries.size(); ++i) {
    const EpochEntryView& entry = view.entries[i];
    std::snprintf(
        buf, sizeof(buf),
        "%s{\"epoch\":%llu,\"step\":%u,\"resident\":%s,\"spilled\":%s,"
        "\"spill_failed\":%s,\"pins\":%u,\"resident_bytes\":%llu}",
        i == 0 ? "" : ",",
        static_cast<unsigned long long>(entry.info.epoch), entry.info.step,
        entry.resident ? "true" : "false", entry.spilled ? "true" : "false",
        entry.spill_failed ? "true" : "false", entry.pins,
        static_cast<unsigned long long>(entry.resident_bytes));
    out += buf;
  }
  out += "]}";
  return out;
}

std::string QueryServer::RenderJournalJson() const {
  if (options_.journal == nullptr) {
    return "{\"total\":0,\"capacity\":0,\"events\":[]}";
  }
  return options_.journal->RenderJson();
}

obs::HttpTextEndpoint::Response QueryServer::ReadyzResponse() const {
  // Liveness is /healthz; THIS endpoint answers "should traffic be
  // routed here": 503 when the stepper has stopped publishing (lag over
  // the configured bound) or the spill sidecar is failing epochs.
  bool ready = true;
  const char* reason = "";
  int64_t lag_nanos = -1;
  uint64_t spill_failed = 0;
  if (const EpochStore* store = backend_->epoch_store()) {
    spill_failed = store->spill_failed_epochs();
    const int64_t last = store->last_publish_steady_nanos();
    if (last > 0) lag_nanos = NowNanos() - last;
    if (spill_failed > 0) {
      ready = false;
      reason = "spill sidecar failing";
    } else if (options_.ready_max_publish_lag_nanos > 0 && lag_nanos >= 0 &&
               lag_nanos > options_.ready_max_publish_lag_nanos) {
      ready = false;
      reason = "epoch publication stalled";
    }
  }
  char buf[320];
  char lag[32];
  if (lag_nanos >= 0) {
    std::snprintf(lag, sizeof(lag), "%.3f",
                  static_cast<double>(lag_nanos) / 1e9);
  } else {
    std::snprintf(lag, sizeof(lag), "null");
  }
  std::snprintf(
      buf, sizeof(buf),
      "{\"ready\":%s,\"dynamic\":%s,\"publish_lag_seconds\":%s,"
      "\"max_publish_lag_seconds\":%.3f,\"spill_failed_epochs\":%llu,"
      "\"reason\":\"%s\"}\n",
      ready ? "true" : "false", backend_->dynamic() ? "true" : "false", lag,
      static_cast<double>(options_.ready_max_publish_lag_nanos) / 1e9,
      static_cast<unsigned long long>(spill_failed), reason);
  obs::HttpTextEndpoint::Response response;
  response.status = ready ? 200 : 503;
  response.content_type = "application/json; charset=utf-8";
  response.body = buf;
  return response;
}

obs::HttpTextEndpoint::Response QueryServer::RouteHttp(
    const std::string& path) const {
  obs::HttpTextEndpoint::Response response;
  if (path == "/metrics") {
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = RenderMetricsText();
    return response;
  }
  if (path == "/healthz") {
    // Pure liveness: the main thread is alive enough to answer.
    response.body = "ok\n";
    return response;
  }
  if (path == "/readyz") return ReadyzResponse();
  if (path == "/epochs") {
    response.content_type = "application/json; charset=utf-8";
    response.body = RenderEpochsJson();
    return response;
  }
  if (path == "/journal") {
    response.content_type = "application/json; charset=utf-8";
    response.body = RenderJournalJson();
    return response;
  }
  return obs::HttpTextEndpoint::NotFound();
}

}  // namespace octopus::server
