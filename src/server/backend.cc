// Copyright 2026 The OCTOPUS Reproduction Authors
#include "server/backend.h"

#include <utility>

#include "mesh/mesh_io.h"

namespace octopus::server {

Result<std::unique_ptr<QueryBackend>> QueryBackend::OpenMeshFile(
    const std::string& path, int threads) {
  auto mesh = LoadMesh(path);
  if (!mesh.ok()) return mesh.status();
  return FromMesh(mesh.MoveValue(), threads);
}

std::unique_ptr<QueryBackend> QueryBackend::FromMesh(TetraMesh mesh,
                                                     int threads) {
  std::unique_ptr<QueryBackend> backend(new QueryBackend(threads));
  backend->mesh_ = std::make_unique<TetraMesh>(std::move(mesh));
  backend->octopus_ = std::make_unique<Octopus>();
  backend->octopus_->Build(*backend->mesh_);
  backend->num_vertices_ = backend->mesh_->num_vertices();
  return backend;
}

Result<std::unique_ptr<QueryBackend>> QueryBackend::OpenSnapshot(
    const std::string& path, size_t pool_bytes, int threads) {
  PagedOctopus::Options options;
  options.pool.pool_bytes = pool_bytes;
  auto paged = PagedOctopus::Open(path, options);
  if (!paged.ok()) return paged.status();
  std::unique_ptr<QueryBackend> backend(new QueryBackend(threads));
  backend->paged_ = paged.MoveValue();
  backend->num_vertices_ =
      backend->paged_->store().header().num_vertices;
  backend->page_bytes_ = backend->paged_->store().header().page_bytes;
  return backend;
}

void QueryBackend::Execute(std::span<const AABB> boxes,
                           engine::QueryBatchResult* out,
                           PhaseStats* batch_stats) {
  if (paged_ != nullptr) {
    paged_->ResetStats();
    engine_.Execute(*paged_, boxes, out);
    *batch_stats = paged_->stats();
  } else {
    octopus_->ResetStats();
    engine_.Execute(*octopus_, *mesh_, boxes, out);
    *batch_stats = octopus_->stats();
  }
}

}  // namespace octopus::server
