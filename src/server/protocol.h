// Copyright 2026 The OCTOPUS Reproduction Authors
// The OCTP wire protocol: length-prefixed binary frames exchanged between
// the query server and its clients. Everything on the wire is
// little-endian with explicit field widths (see docs/PROTOCOL.md for the
// normative layout); encoding and decoding are symmetric free functions
// over byte buffers, so the server, the client library, tests and fuzzers
// all share one implementation and malformed input surfaces as a
// `Status`, never as UB.
#ifndef OCTOPUS_SERVER_PROTOCOL_H_
#define OCTOPUS_SERVER_PROTOCOL_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/aabb.h"
#include "common/status.h"
#include "engine/mesh_epoch.h"
#include "engine/query_batch.h"
#include "obs/trace.h"
#include "octopus/phase_stats.h"

namespace octopus::server {

/// "OCTP" — first field of the HELLO frame; anything else on a fresh
/// connection is rejected as a non-protocol peer.
inline constexpr uint32_t kProtocolMagic = 0x4F435450;

/// Bumped on any incompatible frame-layout change; the server rejects
/// mismatched clients in the handshake. v2: epoch-stamped RESULTs
/// (120-byte batch-stats block), STEP/EPOCH_INFO frames, TIMEOUT error,
/// `steps_applied` in STATS. v3: `epoch` field on QUERY_BATCH (0 =
/// current; the fixed header grew 16 → 24 bytes before the boxes),
/// PIN_EPOCH/UNPIN_EPOCH frames with per-session pin accounting, and
/// the EPOCH_GONE error for history evicted from the bounded epoch
/// ring. v4: lease counters (`lease_hits`/`pages_leased`/
/// `pages_distinct`) in the batch-stats block (120 → 144 bytes) and in
/// STATS (120 → 144 bytes); published epoch ids start at 1 so the
/// initial state stays addressable after supersession (0 remains the
/// "current" sentinel on the wire). v5: `merge_nanos` in the batch-stats
/// block (144 → 152 bytes) and the TRACE_DUMP_REQUEST/TRACE_DUMP frames
/// exporting the server's flight-recorder ring. v6: trace-context
/// propagation — QUERY_BATCH carries an optional `client_span_id` (the
/// fixed header grew 24 → 32 bytes before the boxes; 0 = no client
/// span) and the batch-stats block echoes the server's flight-recorder
/// `trace_id` (152 → 160 bytes; 0 = tracing disabled), so a client can
/// join its own send/wait/receive timings with the server-side record
/// of the same request.
inline constexpr uint16_t kProtocolVersion = 6;

/// Every frame starts with this fixed-size header.
inline constexpr size_t kFrameHeaderBytes = 8;

/// Hard cap on a single frame's payload. Frames announcing more are
/// rejected as malformed before any allocation happens (a 4-byte length
/// prefix must never let a peer request a 4 GB buffer).
inline constexpr uint32_t kMaxFramePayloadBytes = 16u << 20;

enum class FrameType : uint8_t {
  kHello = 1,         ///< client -> server: magic, version
  kWelcome = 2,       ///< server -> client: accepted handshake + backend info
  kQueryBatch = 3,    ///< client -> server: request id + AABB queries
  kResult = 4,        ///< server -> client: per-query results + batch stats
  kStatsRequest = 5,  ///< client -> server: empty payload
  kStats = 6,         ///< server -> client: server metrics snapshot
  kError = 7,         ///< server -> client: typed error, optional request id
  kStep = 8,          ///< client -> server: advance the simulation N steps
  kEpochInfo = 9,     ///< server -> client: current epoch + deformer info
  kPinEpoch = 10,     ///< client -> server: exempt an epoch from eviction
  kUnpinEpoch = 11,   ///< client -> server: release one pin
  kTraceDumpRequest = 12,  ///< client -> server: empty payload (v5)
  kTraceDump = 13,    ///< server -> client: flight-recorder ring (v5)
};

/// Typed error codes carried by kError frames.
enum class ErrorCode : uint16_t {
  kBadMagic = 1,         ///< first frame's magic was not "OCTP"
  kVersionMismatch = 2,  ///< client protocol version unsupported
  kMalformedFrame = 3,   ///< frame failed to parse (connection is closed)
  kFrameTooLarge = 4,    ///< announced payload above kMaxFramePayloadBytes
  kUnexpectedFrame = 5,  ///< frame type invalid in this session state
  kOverloaded = 6,       ///< admission control rejected the request
  kShuttingDown = 7,     ///< server is draining; request not accepted
  kInternal = 8,         ///< server-side failure executing the request
  kTimeout = 9,          ///< session idle/handshake deadline expired
  /// The requested epoch was evicted from the bounded history (or never
  /// existed). Request-scoped: the connection stays usable — re-query
  /// the current epoch, or pin earlier next time.
  kEpochGone = 10,
};

const char* ErrorCodeName(ErrorCode code);

/// Growable byte buffer frames are encoded into / decoded from.
using Buffer = std::vector<uint8_t>;

struct FrameHeader {
  uint32_t payload_bytes = 0;
  FrameType type = FrameType::kHello;
};

struct HelloFrame {
  uint32_t magic = kProtocolMagic;
  uint16_t version = kProtocolVersion;
  uint16_t flags = 0;  ///< reserved, must be zero
};

/// Server self-description sent after a successful handshake.
struct WelcomeFrame {
  uint16_t version = kProtocolVersion;
  uint8_t paged = 0;    ///< 1 = out-of-core OCT2 backend, 0 = in-memory
  uint8_t dynamic = 0;  ///< 1 = a deformer is bound; STEP advances it
  uint64_t num_vertices = 0;
  uint32_t page_bytes = 0;  ///< 0 for the in-memory backend
  /// Coalescing cap: batches above this execute alone, so clients that
  /// care about latency should split requests at this size.
  uint32_t max_batch_queries = 0;
};

/// Per-batch execution statistics attached to every RESULT frame: the
/// engine's `PhaseStats` of the coalesced batch that served the request,
/// plus how big that batch was. With a single active client the batch
/// contains exactly the request's queries and the counters equal the
/// in-process engine's; under coalescing they are batch-scoped.
struct BatchStatsWire {
  int64_t probe_nanos = 0;
  int64_t walk_nanos = 0;
  int64_t crawl_nanos = 0;
  /// Batch-end fold of per-shard stats into the aggregate (v5). Tiny
  /// next to the probe/walk/crawl phases, but it is the one cost the
  /// sharded execution model adds over a sequential sweep.
  int64_t merge_nanos = 0;
  uint64_t queries = 0;
  uint64_t probed_vertices = 0;
  uint64_t walk_invocations = 0;
  uint64_t walk_vertices = 0;
  uint64_t crawl_edges = 0;
  uint64_t result_vertices = 0;
  uint64_t page_hits = 0;
  uint64_t page_misses = 0;
  uint64_t page_evictions = 0;
  /// Lease counters (v4): under the leased-page discipline
  /// `page_hits + page_misses` prices a page once per batch (at lease
  /// acquisition), `lease_hits` counts the free re-reads through held
  /// leases, and `pages_distinct` is the exact distinct-page count the
  /// priced accesses approximate.
  uint64_t lease_hits = 0;
  uint64_t pages_leased = 0;
  uint64_t pages_distinct = 0;
  uint32_t batch_queries = 0;   ///< queries in the coalesced batch
  uint32_t batch_requests = 0;  ///< client requests coalesced into it
  /// v6: the flight-recorder trace id the server assigned THIS request
  /// (not the batch — coalesced requests get distinct records). 0 when
  /// server-side tracing is disabled; clients use it to join their own
  /// per-call spans with a later TRACE_DUMP.
  uint64_t trace_id = 0;
  /// Mesh epoch the batch executed against (epoch-stamped RESULTs): the
  /// whole coalesced batch ran on this one pinned state, so every
  /// result in it is epoch-consistent. `epoch.step` doubles as the
  /// index staleness in simulation steps (the index is built at step 0
  /// and never maintained). {0, 0} on a static backend.
  engine::EpochInfo epoch;

  static BatchStatsWire FromPhaseStats(const PhaseStats& stats,
                                       uint32_t batch_queries,
                                       uint32_t batch_requests,
                                       engine::EpochInfo epoch);
  PhaseStats ToPhaseStats() const;
};

/// Cap on STEP's `steps` field: steps apply inline on the server's
/// event loop, so one frame must not be able to monopolize it with an
/// unbounded amount of O(V) work. Larger values are rejected as
/// malformed; advance further with multiple frames.
inline constexpr uint32_t kMaxStepsPerFrame = 1024;

/// STEP payload: advance the bound deformer `steps` times (0 = just
/// report the current epoch — legal on static servers too).
struct StepFrame {
  uint32_t steps = 0;
};

/// PIN_EPOCH / UNPIN_EPOCH payload: the epoch to (un)pin. For PIN, 0 =
/// pin whatever is current (the answer reports the real id). Pins are
/// per-session counters: an epoch stays exempt from history eviction
/// until every pin is released or the pinning session dies. PIN is
/// answered with EPOCH_INFO carrying the pinned epoch's identity;
/// UNPIN with the *current* epoch (the released one may be evicted by
/// the release itself). Both answer ERROR(EPOCH_GONE) when the named
/// epoch is not in the ring / not pinned by this session.
struct PinEpochFrame {
  uint64_t epoch = 0;
};

/// EPOCH_INFO payload: the answer to every STEP and PIN/UNPIN_EPOCH.
struct EpochInfoWire {
  uint64_t epoch = 0;
  uint32_t step = 0;
  uint8_t dynamic = 0;        ///< 1 = a deformer is bound
  uint8_t deformer_kind = 0;  ///< DeformerKind wire value
  /// Position pages rewritten by the last applied step (paged backends;
  /// 0 in-memory or before the first step) — the OCT2 delta-page cost.
  uint64_t last_step_pages_rewritten = 0;
};

/// Server metrics snapshot carried by the STATS frame.
struct ServerStatsWire {
  uint64_t connections_accepted = 0;
  uint64_t connections_active = 0;
  uint64_t frames_received = 0;
  uint64_t malformed_frames = 0;
  uint64_t queries_received = 0;
  uint64_t queries_rejected = 0;  ///< admission-control rejections
  uint64_t queries_executed = 0;
  uint64_t batches_executed = 0;
  uint64_t latency_p50_nanos = 0;  ///< request arrival -> response enqueue
  uint64_t latency_p95_nanos = 0;
  uint64_t latency_p99_nanos = 0;
  uint64_t page_hits = 0;  ///< totals across every executed batch
  uint64_t page_misses = 0;
  uint64_t page_evictions = 0;
  uint64_t lease_hits = 0;  ///< v4: reads served by held leases
  uint64_t pages_leased = 0;
  uint64_t pages_distinct = 0;
  uint64_t steps_applied = 0;  ///< simulation steps the backend applied

  /// Mean queries per executed batch (0 when nothing executed yet).
  double CoalesceFactor() const {
    return batches_executed == 0
               ? 0.0
               : static_cast<double>(queries_executed) /
                     static_cast<double>(batches_executed);
  }
};

struct ErrorFrame {
  ErrorCode code = ErrorCode::kInternal;
  /// Request the error refers to; 0 for connection-level errors.
  uint64_t request_id = 0;
  std::string message;
};

/// TRACE_DUMP payload (v5): the server's flight-recorder ring, oldest
/// record first. `total_recorded` is the lifetime record count, so a
/// client can report "last N of M". Empty (count 0) when tracing is
/// disabled on the server — a valid answer, not an error.
struct TraceDumpWire {
  uint64_t total_recorded = 0;
  std::vector<obs::QueryTraceRecord> records;
};

/// Fixed wire size of one `obs::QueryTraceRecord`.
inline constexpr size_t kTraceRecordBytes = 136;

// --- Wire-layout lint -------------------------------------------------
//
// Named byte sizes of every fixed-layout OCTP block. Each is derived
// from the widths of the struct fields it carries, so adding or
// resizing a field without updating the constant (and docs/PROTOCOL.md
// — cross-checked by tools/check_wire_spec.py) is a compile error
// here, not a silent wire break discovered by a peer. The encoders are
// field-by-field little-endian (never a struct memcpy), so these
// constants — not sizeof(struct) — ARE the wire layout.

/// HELLO payload: magic u32, version u16, flags u16.
inline constexpr size_t kHelloPayloadBytes = 8;
static_assert(kHelloPayloadBytes ==
              sizeof(HelloFrame::magic) + sizeof(HelloFrame::version) +
                  sizeof(HelloFrame::flags));

/// WELCOME payload: version u16, paged u8, dynamic u8, num_vertices
/// u64, page_bytes u32, max_batch_queries u32.
inline constexpr size_t kWelcomePayloadBytes = 20;
static_assert(kWelcomePayloadBytes ==
              sizeof(WelcomeFrame::version) + sizeof(WelcomeFrame::paged) +
                  sizeof(WelcomeFrame::dynamic) +
                  sizeof(WelcomeFrame::num_vertices) +
                  sizeof(WelcomeFrame::page_bytes) +
                  sizeof(WelcomeFrame::max_batch_queries));

/// QUERY_BATCH fixed header before the boxes (v6): request_id u64,
/// count u32, reserved u32, epoch u64, client_span_id u64.
inline constexpr size_t kQueryBatchFixedBytes = 32;
static_assert(kQueryBatchFixedBytes ==
              sizeof(uint64_t) + sizeof(uint32_t) + sizeof(uint32_t) +
                  sizeof(uint64_t) + sizeof(uint64_t));

/// One query box: 6 f32 (min.xyz, max.xyz).
inline constexpr size_t kQueryBoxBytes = 24;
static_assert(kQueryBoxBytes == 6 * sizeof(float));

/// RESULT fixed bytes before the batch-stats block: request_id u64,
/// count u32, reserved u32.
inline constexpr size_t kResultFixedBytes = 16;
static_assert(kResultFixedBytes ==
              sizeof(uint64_t) + sizeof(uint32_t) + sizeof(uint32_t));

/// The batch-stats block every RESULT carries (v6: 160 bytes). Field
/// order on the wire: the 4 phase i64s, the 12 u64 counters, the two
/// batch u32s, epoch u64 + step u32 + reserved u32, trace_id u64.
inline constexpr size_t kBatchStatsBytes = 160;
static_assert(kBatchStatsBytes ==
              sizeof(BatchStatsWire::probe_nanos) +
                  sizeof(BatchStatsWire::walk_nanos) +
                  sizeof(BatchStatsWire::crawl_nanos) +
                  sizeof(BatchStatsWire::merge_nanos) +
                  sizeof(BatchStatsWire::queries) +
                  sizeof(BatchStatsWire::probed_vertices) +
                  sizeof(BatchStatsWire::walk_invocations) +
                  sizeof(BatchStatsWire::walk_vertices) +
                  sizeof(BatchStatsWire::crawl_edges) +
                  sizeof(BatchStatsWire::result_vertices) +
                  sizeof(BatchStatsWire::page_hits) +
                  sizeof(BatchStatsWire::page_misses) +
                  sizeof(BatchStatsWire::page_evictions) +
                  sizeof(BatchStatsWire::lease_hits) +
                  sizeof(BatchStatsWire::pages_leased) +
                  sizeof(BatchStatsWire::pages_distinct) +
                  sizeof(BatchStatsWire::batch_queries) +
                  sizeof(BatchStatsWire::batch_requests) +
                  sizeof(engine::EpochInfo::epoch) +
                  sizeof(engine::EpochInfo::step) +
                  sizeof(uint32_t) /* reserved */ +
                  sizeof(BatchStatsWire::trace_id));

/// STATS payload: 18 u64 counters, in declaration order.
inline constexpr size_t kStatsPayloadBytes = 144;
static_assert(kStatsPayloadBytes == 18 * sizeof(uint64_t));

/// STEP payload: steps u32, reserved u32.
inline constexpr size_t kStepPayloadBytes = 8;
static_assert(kStepPayloadBytes ==
              sizeof(StepFrame::steps) + sizeof(uint32_t));

/// EPOCH_INFO payload: epoch u64, step u32, dynamic u8, deformer u8,
/// reserved u16, last_step_pages_rewritten u64.
inline constexpr size_t kEpochInfoPayloadBytes = 24;
static_assert(kEpochInfoPayloadBytes ==
              sizeof(EpochInfoWire::epoch) + sizeof(EpochInfoWire::step) +
                  sizeof(EpochInfoWire::dynamic) +
                  sizeof(EpochInfoWire::deformer_kind) +
                  sizeof(uint16_t) /* reserved */ +
                  sizeof(EpochInfoWire::last_step_pages_rewritten));

/// PIN_EPOCH / UNPIN_EPOCH payload: epoch u64.
inline constexpr size_t kPinEpochPayloadBytes = 8;
static_assert(kPinEpochPayloadBytes == sizeof(PinEpochFrame::epoch));

/// ERROR fixed bytes before the message: code u16, reserved u16,
/// request_id u64, message length u32.
inline constexpr size_t kErrorFixedBytes = 16;
static_assert(kErrorFixedBytes ==
              sizeof(uint16_t) + sizeof(uint16_t) + sizeof(uint64_t) +
                  sizeof(uint32_t));

/// TRACE_DUMP fixed bytes before the records: total_recorded u64,
/// count u32, reserved u32.
inline constexpr size_t kTraceDumpFixedBytes = 16;
static_assert(kTraceDumpFixedBytes ==
              sizeof(TraceDumpWire::total_recorded) + sizeof(uint32_t) +
                  sizeof(uint32_t));

// One trace record: 4 u64 ids, 4 u32 batch shape fields, 8 i64 phase
// nanos, 3 u64 counters — 136 bytes, the constant TRACE_DUMP sizing
// and parsing already rely on.
static_assert(kTraceRecordBytes ==
              sizeof(obs::QueryTraceRecord::trace_id) +
                  sizeof(obs::QueryTraceRecord::session_id) +
                  sizeof(obs::QueryTraceRecord::request_id) +
                  sizeof(obs::QueryTraceRecord::epoch) +
                  sizeof(obs::QueryTraceRecord::epoch_step) +
                  sizeof(obs::QueryTraceRecord::queries) +
                  sizeof(obs::QueryTraceRecord::batch_queries) +
                  sizeof(obs::QueryTraceRecord::batch_requests) +
                  sizeof(obs::QueryTraceRecord::arrival_nanos) +
                  sizeof(obs::QueryTraceRecord::queue_wait_nanos) +
                  sizeof(obs::QueryTraceRecord::probe_nanos) +
                  sizeof(obs::QueryTraceRecord::walk_nanos) +
                  sizeof(obs::QueryTraceRecord::crawl_nanos) +
                  sizeof(obs::QueryTraceRecord::merge_nanos) +
                  sizeof(obs::QueryTraceRecord::serialize_nanos) +
                  sizeof(obs::QueryTraceRecord::total_nanos) +
                  sizeof(obs::QueryTraceRecord::page_accesses) +
                  sizeof(obs::QueryTraceRecord::lease_hits) +
                  sizeof(obs::QueryTraceRecord::result_vertices));

// --- Encoding: appends one complete frame (header + payload) ---

void AppendHello(Buffer* out, const HelloFrame& hello);
void AppendWelcome(Buffer* out, const WelcomeFrame& welcome);
/// `epoch` selects the mesh state to execute against: 0 = the server's
/// current epoch (the default every latency-path client wants), any
/// other value = that exact historical epoch (EPOCH_GONE if evicted).
/// `client_span_id` (v6) is the caller's span identity for this
/// request, or 0 for none; the server carries it into its slow-query
/// log so client and server logs correlate line-for-line.
void AppendQueryBatch(Buffer* out, uint64_t request_id,
                      std::span<const AABB> boxes, uint64_t epoch = 0,
                      uint64_t client_span_id = 0);
/// `per_query` are the request's result slots, in request query order.
void AppendResult(Buffer* out, uint64_t request_id,
                  const BatchStatsWire& stats,
                  std::span<const std::vector<VertexId>> per_query);
/// Zero-copy variant of `AppendResult`: encodes only the frame's fixed
/// bytes — header, request id, query count, reserved word, batch-stats
/// block, then the n per-query count words contiguously — and patches
/// the header's payload length to the FULL `ResultPayloadBytes`. The
/// writer owes the wire query i's vertex ids immediately after count
/// word i (gathered via iovec; see server/io_pipeline.h), which is what
/// lets RESULT vectors go out without ever being memcpy'd into a frame
/// buffer.
void AppendResultMeta(Buffer* out, uint64_t request_id,
                      const BatchStatsWire& stats,
                      std::span<const std::vector<VertexId>> per_query);
/// Bytes of a RESULT frame from its header through the batch-stats
/// block — the offset of the first per-query count word in an
/// `AppendResultMeta` buffer.
inline constexpr size_t kResultMetaBytesBeforeCounts =
    kFrameHeaderBytes + kResultFixedBytes + kBatchStatsBytes;
void AppendStatsRequest(Buffer* out);
void AppendStats(Buffer* out, const ServerStatsWire& stats);
void AppendError(Buffer* out, const ErrorFrame& error);
void AppendStep(Buffer* out, const StepFrame& step);
void AppendEpochInfo(Buffer* out, const EpochInfoWire& info);
void AppendPinEpoch(Buffer* out, const PinEpochFrame& pin);
void AppendUnpinEpoch(Buffer* out, const PinEpochFrame& unpin);
void AppendTraceDumpRequest(Buffer* out);
void AppendTraceDump(Buffer* out, const TraceDumpWire& dump);

// --- Decoding ---

/// Parses the fixed header from the first `kFrameHeaderBytes` of `data`
/// (which must hold at least that many bytes). Rejects unknown frame
/// types (InvalidArgument) and payloads above `kMaxFramePayloadBytes`
/// (ResourceExhausted, so callers can answer FRAME_TOO_LARGE).
Result<FrameHeader> ParseFrameHeader(std::span<const uint8_t> data);

/// Exact RESULT payload size for a request of these result sets — lets
/// the server check against `kMaxFramePayloadBytes` before encoding.
size_t ResultPayloadBytes(
    std::span<const std::vector<VertexId>> per_query);

/// Each parser consumes exactly one frame's payload (not the header) and
/// fails with InvalidArgument on any size/content mismatch.
Status ParseHello(std::span<const uint8_t> payload, HelloFrame* out);
Status ParseWelcome(std::span<const uint8_t> payload, WelcomeFrame* out);
Status ParseQueryBatch(std::span<const uint8_t> payload,
                       uint64_t* request_id, std::vector<AABB>* boxes,
                       uint64_t* epoch, uint64_t* client_span_id);
Status ParseResult(std::span<const uint8_t> payload, uint64_t* request_id,
                   BatchStatsWire* stats,
                   std::vector<std::vector<VertexId>>* per_query);
Status ParseStats(std::span<const uint8_t> payload, ServerStatsWire* out);
Status ParseError(std::span<const uint8_t> payload, ErrorFrame* out);
Status ParseStep(std::span<const uint8_t> payload, StepFrame* out);
Status ParseEpochInfo(std::span<const uint8_t> payload, EpochInfoWire* out);
/// Parses either PIN_EPOCH or UNPIN_EPOCH (identical payloads; the
/// frame type in the header distinguishes them).
Status ParsePinEpoch(std::span<const uint8_t> payload, PinEpochFrame* out);
Status ParseTraceDump(std::span<const uint8_t> payload, TraceDumpWire* out);

}  // namespace octopus::server

#endif  // OCTOPUS_SERVER_PROTOCOL_H_
