// Copyright 2026 The OCTOPUS Reproduction Authors
// The server's query backend, epoch-versioned with bounded history: one
// OCTOPUS executor — in-memory mesh or paged OCT2 snapshot — plus,
// optionally, a bound deformer that `AdvanceStep` drives. Every step
// publishes a fresh position epoch copy-on-write (in-memory: a
// position-buffer swap; paged: an OCT2 delta-page overlay that rewrites
// only displaced-position pages) into an `EpochStore`: recent epochs
// stay resident, older ones spill to a `.oct2d` sidecar and remain
// queryable (`ExecuteAt`), and epochs past the history cap are evicted
// unless pinned. The surface index built at load time is never touched —
// the paper's stale-index claim, serving a mesh that moves *and*
// remembers where it has been.
//
// Thread model: `Execute`/`ExecuteAt`/`PinEpoch`/`UnpinEpoch` belong to
// the event-loop thread; `AdvanceStep` may run on a dedicated stepper
// thread concurrently with them. Queries pin an epoch in O(1) and never
// block on (or get torn by) an in-flight step; `AdvanceStep` itself is
// serialized.
#ifndef OCTOPUS_SERVER_VERSIONED_BACKEND_H_
#define OCTOPUS_SERVER_VERSIONED_BACKEND_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "engine/mesh_epoch.h"
#include "engine/query_engine.h"
#include "mesh/tetra_mesh.h"
#include "octopus/paged_executor.h"
#include "octopus/query_executor.h"
#include "server/epoch_store.h"
#include "sim/deformer_spec.h"
#include "sim/versioned_mesh.h"
#include "storage/delta_overlay.h"

namespace octopus::server {

/// \brief Executes query batches for the server, over either backing
/// store, against an epoch-versioned position state with a bounded,
/// spillable history.
///
/// `Execute`/`ExecuteAt` are single-threaded (the server's scheduler
/// thread is the only caller; internal query parallelism comes from the
/// engine's thread pool). `AdvanceStep`, `CurrentEpoch`, `PinEpoch` and
/// `UnpinEpoch` are safe from any thread concurrently with them — the
/// I/O threads call the pin/step paths inline while batches execute.
class VersionedBackend {
 public:
  /// In-memory backend over an OCT1 mesh file (loads + builds the
  /// surface index).
  static Result<std::unique_ptr<VersionedBackend>> OpenMeshFile(
      const std::string& path, int threads);

  /// In-memory backend over an already-built mesh (tests, benches).
  static std::unique_ptr<VersionedBackend> FromMesh(TetraMesh mesh,
                                                    int threads);

  /// Out-of-core backend over an OCT2 snapshot with a byte-capped pool.
  static Result<std::unique_ptr<VersionedBackend>> OpenSnapshot(
      const std::string& path, size_t pool_bytes, int threads);

  /// Overrides the epoch retention/spill knobs. Call before
  /// `BindDeformer` (which creates the store); afterwards it is an
  /// error. The defaults keep 8 epochs resident with no spill sidecar.
  Status ConfigureRetention(const EpochRetentionOptions& options);

  /// Binds the spec'd deformer, making the backend dynamic: the epoch
  /// store is created, epoch 0 (the state the index was built from) is
  /// published and `AdvanceStep` becomes available. An unresolved
  /// amplitude (0) is derived from the mesh. Call before serving; at
  /// most once.
  Status BindDeformer(const DeformerSpec& spec);

  /// Points lifecycle events (step applied here; epoch lifecycle in the
  /// store) at `journal` (non-owning; null detaches). Call before the
  /// stepper starts. Attach before `BindDeformer` to also journal the
  /// initial epoch's publication; attaching later is forwarded to an
  /// already-created store.
  void AttachJournal(obs::EventJournal* journal) {
    journal_ = journal;
    if (store_ != nullptr) store_->AttachJournal(journal);
  }

  bool dynamic() const { return dynamic_.load(std::memory_order_acquire); }
  DeformerKind deformer_kind() const;

  /// SIMULATE phase: advances the bound deformer one step and publishes
  /// the new positions as a fresh epoch (copy-on-write; on the paged
  /// backend only displaced-position delta pages are rewritten), then
  /// lets the store enforce retention (spill + evict). Requires
  /// `dynamic()`. Serialized internally; safe concurrently with
  /// `Execute`.
  engine::EpochInfo AdvanceStep();

  engine::EpochInfo CurrentEpoch() const;

  /// Position pages rewritten by the most recent step (paged backends;
  /// always 0 in-memory).
  uint64_t last_step_pages_rewritten() const {
    return last_step_pages_rewritten_.load(std::memory_order_acquire);
  }

  /// Executes one coalesced batch against the pinned current epoch.
  /// `batch_stats` receives exactly this batch's stats (the counters
  /// are reset per batch, so the delta is deterministic and, for a
  /// single-request batch, identical to an in-process run of the same
  /// queries at the same step), with `stale_steps` set to the epoch's
  /// step; `out->epoch` is the epoch it ran on.
  void Execute(std::span<const AABB> boxes, engine::QueryBatchResult* out,
               PhaseStats* batch_stats);

  /// Executes against a historical epoch: `wire_epoch` 0 selects the
  /// current epoch (== `Execute`), any other value the epoch with that
  /// id. Spilled epochs are served through the sidecar (the reload I/O
  /// lands in `batch_stats->page_io`). NotFound = the epoch was evicted
  /// or never existed — the server answers EPOCH_GONE.
  Status ExecuteAt(engine::EpochId wire_epoch, std::span<const AABB> boxes,
                   engine::QueryBatchResult* out, PhaseStats* batch_stats);

  /// Pins an epoch against eviction (`wire_epoch` 0 = current) and
  /// returns its identity; NotFound when it is already gone. The server
  /// keeps per-session counts and releases pins when the session dies.
  Result<engine::EpochInfo> PinEpoch(engine::EpochId wire_epoch);
  /// Releases one pin; NotFound for an unknown/unpinned epoch.
  Status UnpinEpoch(engine::EpochId epoch);

  /// The retention layer; null until a deformer is bound (static
  /// backends have exactly one epoch and nothing to retain).
  const EpochStore* epoch_store() const { return store_.get(); }

  bool paged() const { return paged_ != nullptr; }
  /// The paged backend's buffer pool (resident bytes, pin counts, I/O
  /// totals for /metrics); null for the in-memory backend.
  storage::BufferManager* buffer_manager() const {
    return paged_ ? paged_->store().buffer_manager() : nullptr;
  }
  uint64_t num_vertices() const { return num_vertices_; }
  /// Snapshot page size; 0 for the in-memory backend.
  uint32_t page_bytes() const { return page_bytes_; }
  int threads() const { return engine_.threads(); }

 private:
  explicit VersionedBackend(int threads)
      : engine_(engine::QueryEngineOptions{.threads = threads}) {}

  /// Runs `boxes` against one pinned epoch state (current or
  /// historical) on whichever executor this backend owns.
  void ExecutePinned(const PinnedEpochState* pin,
                     std::span<const AABB> boxes,
                     engine::QueryBatchResult* out,
                     PhaseStats* batch_stats);

  engine::QueryEngine engine_;
  // Exactly one of the two backends is set.
  // In-memory: the versioned mesh owns connectivity, live positions and
  // the deformer; the executor state (stale surface index + per-shard
  // contexts) is built once at load and shared by every epoch.
  std::unique_ptr<VersionedMesh> mesh_;
  OctopusOptions octopus_options_;
  SurfaceIndex surface_index_;
  mutable engine::ContextPool contexts_;
  // Paged: the stale snapshot executor plus the live simulation
  // positions the bound deformer advances (the monitoring side reads
  // through the pool + overlay; this array is the simulation black box).
  std::unique_ptr<PagedOctopus> paged_;
  std::string snapshot_path_;
  DeformerSpec paged_spec_;
  std::unique_ptr<Deformer> paged_deformer_;
  std::unique_ptr<TetraMesh> paged_sim_mesh_;  // positions only, no tets
  common::Mutex step_mu_;  // serializes AdvanceStep (both backends)
  /// The previous step's positions — the delta diff base. Owned by the
  /// stepper; queries never read it.
  std::vector<Vec3> paged_prev_positions_ GUARDED_BY(step_mu_);

  /// Epoch history: publication, retention, spill, pins. The store's
  /// single mutex makes every publication one atomic swap as observed
  /// by concurrent pins — an epoch's info and its position state are
  /// always seen together.
  EpochRetentionOptions retention_options_;
  std::unique_ptr<EpochStore> store_;
  obs::EventJournal* journal_ = nullptr;  ///< lifecycle event sink

  std::atomic<bool> dynamic_{false};
  std::atomic<uint64_t> last_step_pages_rewritten_{0};
  uint64_t num_vertices_ = 0;
  uint32_t page_bytes_ = 0;
};

}  // namespace octopus::server

#endif  // OCTOPUS_SERVER_VERSIONED_BACKEND_H_
