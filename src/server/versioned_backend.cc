// Copyright 2026 The OCTOPUS Reproduction Authors
#include "server/versioned_backend.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <span>
#include <utility>

#include "mesh/mesh_io.h"
#include "storage/file_util.h"
#include "storage/page.h"

namespace octopus::server {

namespace {

/// Sequentially reads a snapshot's positions section (the simulation
/// side's working copy — one bulk read at bind time, not routed through
/// the query pool).
Status ReadAllPositions(const std::string& path,
                        const storage::SnapshotHeader& h,
                        std::vector<Vec3>* out) {
  storage::FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open for read: " + path);
  out->resize(h.num_vertices);
  const size_t per_page = h.PositionsPerPage();
  uint64_t done = 0;
  for (uint64_t page = h.positions_start_page; done < h.num_vertices;
       ++page) {
    const size_t chunk = static_cast<size_t>(
        std::min<uint64_t>(per_page, h.num_vertices - done));
    if (std::fseek(f.get(), static_cast<long>(page * h.page_bytes),
                   SEEK_SET) != 0 ||
        std::fread(out->data() + done, sizeof(Vec3), chunk, f.get()) !=
            chunk) {
      return Status::Corruption("truncated positions section in " + path);
    }
    done += chunk;
  }
  return Status::OK();
}

/// Mean edge length through the paged store (amplitude default when the
/// spec left it unresolved): a bounded vertex sample read through a
/// throwaway accessor.
float EstimateMeanEdgeLengthPaged(const storage::PagedMeshStore& store,
                                  std::span<const Vec3> positions) {
  storage::PageIOStats scratch_stats;
  storage::PagedMeshAccessor accessor(&store, &scratch_stats);
  const size_t v_count = store.num_vertices();
  const size_t stride = std::max<size_t>(1, v_count / 1024);
  double total = 0.0;
  size_t edges = 0;
  for (size_t v = 0; v < v_count; v += stride) {
    const Vec3 p = positions[v];
    for (VertexId n : accessor.neighbors(static_cast<VertexId>(v))) {
      total += Distance(p, positions[n]);
      ++edges;
    }
  }
  return edges == 0 ? 0.0f : static_cast<float>(total / edges);
}

}  // namespace

Result<std::unique_ptr<VersionedBackend>> VersionedBackend::OpenMeshFile(
    const std::string& path, int threads) {
  auto mesh = LoadMesh(path);
  if (!mesh.ok()) return mesh.status();
  return FromMesh(mesh.MoveValue(), threads);
}

std::unique_ptr<VersionedBackend> VersionedBackend::FromMesh(TetraMesh mesh,
                                                             int threads) {
  std::unique_ptr<VersionedBackend> backend(new VersionedBackend(threads));
  backend->num_vertices_ = mesh.num_vertices();
  backend->mesh_ = std::make_unique<VersionedMesh>(std::move(mesh));
  // The one-time build the paper prices: after this the index is never
  // maintained, however many steps the mesh advances.
  backend->surface_index_.Build(backend->mesh_->base());
  backend->contexts_.set_num_vertices(backend->num_vertices_);
  return backend;
}

Result<std::unique_ptr<VersionedBackend>> VersionedBackend::OpenSnapshot(
    const std::string& path, size_t pool_bytes, int threads) {
  PagedOctopus::Options options;
  options.pool.pool_bytes = pool_bytes;
  auto paged = PagedOctopus::Open(path, options);
  if (!paged.ok()) return paged.status();
  std::unique_ptr<VersionedBackend> backend(new VersionedBackend(threads));
  backend->paged_ = paged.MoveValue();
  backend->snapshot_path_ = path;
  backend->num_vertices_ =
      backend->paged_->store().header().num_vertices;
  backend->page_bytes_ = backend->paged_->store().header().page_bytes;
  return backend;
}

Status VersionedBackend::ConfigureRetention(
    const EpochRetentionOptions& options) {
  if (store_ != nullptr) {
    return Status::InvalidArgument(
        "retention must be configured before the deformer is bound");
  }
  OCTOPUS_RETURN_NOT_OK(options.Validate());
  retention_options_ = options;
  return Status::OK();
}

Status VersionedBackend::BindDeformer(const DeformerSpec& spec) {
  if (dynamic()) {
    return Status::InvalidArgument("a deformer is already bound");
  }
  // The sidecar pages with the snapshot's geometry on the paged
  // backend; in-memory picks the default (positions are packed into
  // whatever page size the sidecar uses — it only talks to itself).
  const uint32_t spill_page_bytes =
      page_bytes_ != 0 ? page_bytes_
                       : static_cast<uint32_t>(storage::kDefaultPageBytes);
  auto store =
      std::make_unique<EpochStore>(spill_page_bytes, retention_options_);
  OCTOPUS_RETURN_NOT_OK(store->Init());
  store->AttachJournal(journal_);

  if (mesh_ != nullptr) {
    OCTOPUS_RETURN_NOT_OK(mesh_->BindDeformer(spec));
    store->Publish(
        PinnedEpochState{engine::EpochInfo{1, 0}, nullptr, mesh_->Pin()});
    store_ = std::move(store);
    dynamic_.store(true, std::memory_order_release);
    return Status::OK();
  }

  // Paged path: materialize the simulation-side position state (the
  // black-box solver's working copy), bind the deformer to it, and
  // publish epoch 1 with no overlay (the base file IS the initial
  // state; id 0 stays the wire's "current" sentinel).
  const storage::SnapshotHeader& header = paged_->store().header();
  std::vector<Vec3> positions;
  OCTOPUS_RETURN_NOT_OK(
      ReadAllPositions(snapshot_path_, header, &positions));
  DeformerSpec resolved = spec;
  auto deformer = MakeDeformerResolving(
      &resolved, EstimateMeanEdgeLengthPaged(paged_->store(), positions));
  if (!deformer.ok()) return deformer.status();

  {
    // Init-time write; no stepper exists yet, the lock is for the
    // thread-safety analysis (the field is guarded by step_mu_).
    common::MutexLock step_lock(step_mu_);
    paged_prev_positions_ = positions;
  }
  paged_sim_mesh_ =
      std::make_unique<TetraMesh>(std::move(positions), std::vector<Tet>{});
  paged_deformer_ = deformer.MoveValue();
  paged_deformer_->Bind(*paged_sim_mesh_);
  paged_spec_ = resolved;
  store->Publish(
      PinnedEpochState{engine::EpochInfo{1, 0}, nullptr, nullptr});
  store_ = std::move(store);
  dynamic_.store(true, std::memory_order_release);
  return Status::OK();
}

DeformerKind VersionedBackend::deformer_kind() const {
  if (!dynamic()) return DeformerKind::kNone;
  return mesh_ != nullptr ? mesh_->deformer_kind() : paged_spec_.kind;
}

engine::EpochInfo VersionedBackend::AdvanceStep() {
  assert(dynamic() && "AdvanceStep requires a bound deformer");
  common::MutexLock step_lock(step_mu_);

  if (mesh_ != nullptr) {
    const engine::EpochInfo info = mesh_->AdvanceStep();
    if (journal_ != nullptr) {
      journal_->Emit(obs::EventKind::kStepApplied, 0, 0, info.step, 0);
    }
    // Mirror the publication into the history store; the store is what
    // queries (current and historical) actually read, so this is the
    // externally visible publication point — one atomic swap inside.
    store_->Publish(PinnedEpochState{info, nullptr, mesh_->Pin()});
    return info;
  }

  const std::optional<PinnedEpochState> prev = store_->PinNewest();
  engine::EpochInfo info;
  info.epoch = prev->info.epoch + 1;
  info.step = prev->info.step + 1;
  // SIMULATE: O(V) deformation of the live array, outside any lock the
  // query path takes.
  paged_deformer_->ApplyStep(static_cast<int>(info.step),
                             paged_sim_mesh_.get());
  // Delta pages: rewrite only position pages whose bytes changed;
  // unchanged pages are shared with the previous epoch (or stay in the
  // base file). Adjacency and surface pages are never touched.
  size_t rewritten = 0;
  std::shared_ptr<const storage::PositionOverlay> overlay =
      storage::PositionOverlay::BuildNext(
          paged_->store().header(), prev->overlay.get(),
          paged_prev_positions_, paged_sim_mesh_->positions(), &rewritten);
  paged_prev_positions_ = paged_sim_mesh_->positions();
  last_step_pages_rewritten_.store(rewritten, std::memory_order_release);
  if (journal_ != nullptr) {
    journal_->Emit(obs::EventKind::kStepApplied, 0, 0, info.step,
                   rewritten);
  }
  store_->Publish(PinnedEpochState{info, std::move(overlay), nullptr});
  return info;
}

engine::EpochInfo VersionedBackend::CurrentEpoch() const {
  return store_ != nullptr ? store_->CurrentInfo() : engine::EpochInfo{};
}

void VersionedBackend::ExecutePinned(const PinnedEpochState* pin,
                                     std::span<const AABB> boxes,
                                     engine::QueryBatchResult* out,
                                     PhaseStats* batch_stats) {
  if (paged_ != nullptr) {
    paged_->ResetStats();
    paged_->RangeQueryBatch(boxes, out, engine_.pool(),
                            pin != nullptr ? pin->overlay.get() : nullptr);
    *batch_stats = paged_->stats();
  } else {
    const MeshGraphView graph = mesh_->PinnedGraph(
        pin != nullptr ? pin->positions.get() : nullptr);
    contexts_.ResetStats();
    ExecuteOctopusBatch(graph, surface_index_, octopus_options_, boxes,
                        out, engine_.pool(), &contexts_);
    *batch_stats = contexts_.stats();
  }
  if (pin != nullptr) {
    out->epoch = pin->info;
    batch_stats->stale_steps = pin->info.step;
  }
}

void VersionedBackend::Execute(std::span<const AABB> boxes,
                               engine::QueryBatchResult* out,
                               PhaseStats* batch_stats) {
  // Pin the epoch for the whole batch: the position state (and the
  // buffers behind it) stays alive and immutable even if a step
  // publishes a successor mid-batch.
  if (store_ != nullptr) {
    const std::optional<PinnedEpochState> pin = store_->PinNewest();
    ExecutePinned(pin.has_value() ? &*pin : nullptr, boxes, out,
                  batch_stats);
    return;
  }
  ExecutePinned(nullptr, boxes, out, batch_stats);
}

Status VersionedBackend::ExecuteAt(engine::EpochId wire_epoch,
                                   std::span<const AABB> boxes,
                                   engine::QueryBatchResult* out,
                                   PhaseStats* batch_stats) {
  if (wire_epoch == 0) {
    // The wire's "epoch 0" means "whatever is current". The initial
    // state stays addressable as epoch 1 (published ids start at 1, so
    // the sentinel never shadows a real epoch).
    Execute(boxes, out, batch_stats);
    return Status::OK();
  }
  if (store_ == nullptr) {
    return Status::NotFound(
        "epoch " + std::to_string(wire_epoch) +
        " is gone: a static server has only its load-time state");
  }
  storage::PageIOStats reload_io;
  auto pinned = store_->PinEpoch(wire_epoch, &reload_io);
  if (!pinned.ok()) return pinned.status();
  ExecutePinned(&pinned.Value(), boxes, out, batch_stats);
  // Price the in-memory rematerialization (paged reloads already landed
  // in the executing contexts' counters via the sidecar pool).
  batch_stats->page_io.Merge(reload_io);
  return Status::OK();
}

Result<engine::EpochInfo> VersionedBackend::PinEpoch(
    engine::EpochId wire_epoch) {
  if (store_ == nullptr) {
    // Static backends have exactly one, never-evicted state: pinning
    // "current" is a harmless no-op so clients can run one code path.
    if (wire_epoch == 0) return engine::EpochInfo{};
    return Status::NotFound(
        "epoch " + std::to_string(wire_epoch) +
        " is gone: a static server has only its load-time state");
  }
  // "Pin current" resolves and pins atomically in the store: reading
  // the current id here and pinning it in a second call could lose a
  // race with a stepper publish evicting that very epoch.
  return wire_epoch == 0 ? store_->AddPinNewest()
                         : store_->AddPin(wire_epoch);
}

Status VersionedBackend::UnpinEpoch(engine::EpochId epoch) {
  if (store_ == nullptr) {
    if (epoch == 0) return Status::OK();  // the static no-op pin
    return Status::NotFound("epoch " + std::to_string(epoch) +
                            " was never pinned on this static server");
  }
  return store_->ReleasePin(epoch);
}

}  // namespace octopus::server
