// Copyright 2026 The OCTOPUS Reproduction Authors
#include "server/versioned_backend.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <span>
#include <utility>

#include "mesh/mesh_io.h"
#include "storage/file_util.h"

namespace octopus::server {

namespace {

/// Sequentially reads a snapshot's positions section (the simulation
/// side's working copy — one bulk read at bind time, not routed through
/// the query pool).
Status ReadAllPositions(const std::string& path,
                        const storage::SnapshotHeader& h,
                        std::vector<Vec3>* out) {
  storage::FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open for read: " + path);
  out->resize(h.num_vertices);
  const size_t per_page = h.PositionsPerPage();
  uint64_t done = 0;
  for (uint64_t page = h.positions_start_page; done < h.num_vertices;
       ++page) {
    const size_t chunk = static_cast<size_t>(
        std::min<uint64_t>(per_page, h.num_vertices - done));
    if (std::fseek(f.get(), static_cast<long>(page * h.page_bytes),
                   SEEK_SET) != 0 ||
        std::fread(out->data() + done, sizeof(Vec3), chunk, f.get()) !=
            chunk) {
      return Status::Corruption("truncated positions section in " + path);
    }
    done += chunk;
  }
  return Status::OK();
}

/// Mean edge length through the paged store (amplitude default when the
/// spec left it unresolved): a bounded vertex sample read through a
/// throwaway accessor.
float EstimateMeanEdgeLengthPaged(const storage::PagedMeshStore& store,
                                  std::span<const Vec3> positions) {
  storage::PageIOStats scratch_stats;
  storage::PagedMeshAccessor accessor(&store, &scratch_stats);
  const size_t v_count = store.num_vertices();
  const size_t stride = std::max<size_t>(1, v_count / 1024);
  double total = 0.0;
  size_t edges = 0;
  for (size_t v = 0; v < v_count; v += stride) {
    const Vec3 p = positions[v];
    for (VertexId n : accessor.neighbors(static_cast<VertexId>(v))) {
      total += Distance(p, positions[n]);
      ++edges;
    }
  }
  return edges == 0 ? 0.0f : static_cast<float>(total / edges);
}

}  // namespace

Result<std::unique_ptr<VersionedBackend>> VersionedBackend::OpenMeshFile(
    const std::string& path, int threads) {
  auto mesh = LoadMesh(path);
  if (!mesh.ok()) return mesh.status();
  return FromMesh(mesh.MoveValue(), threads);
}

std::unique_ptr<VersionedBackend> VersionedBackend::FromMesh(TetraMesh mesh,
                                                             int threads) {
  std::unique_ptr<VersionedBackend> backend(new VersionedBackend(threads));
  backend->num_vertices_ = mesh.num_vertices();
  backend->mesh_ = std::make_unique<VersionedMesh>(std::move(mesh));
  // The one-time build the paper prices: after this the index is never
  // maintained, however many steps the mesh advances.
  backend->surface_index_.Build(backend->mesh_->base());
  backend->contexts_.set_num_vertices(backend->num_vertices_);
  return backend;
}

Result<std::unique_ptr<VersionedBackend>> VersionedBackend::OpenSnapshot(
    const std::string& path, size_t pool_bytes, int threads) {
  PagedOctopus::Options options;
  options.pool.pool_bytes = pool_bytes;
  auto paged = PagedOctopus::Open(path, options);
  if (!paged.ok()) return paged.status();
  std::unique_ptr<VersionedBackend> backend(new VersionedBackend(threads));
  backend->paged_ = paged.MoveValue();
  backend->snapshot_path_ = path;
  backend->num_vertices_ =
      backend->paged_->store().header().num_vertices;
  backend->page_bytes_ = backend->paged_->store().header().page_bytes;
  return backend;
}

Status VersionedBackend::BindDeformer(const DeformerSpec& spec) {
  if (dynamic()) {
    return Status::InvalidArgument("a deformer is already bound");
  }
  if (mesh_ != nullptr) {
    OCTOPUS_RETURN_NOT_OK(mesh_->BindDeformer(spec));
    dynamic_.store(true, std::memory_order_release);
    return Status::OK();
  }

  // Paged path: materialize the simulation-side position state (the
  // black-box solver's working copy), bind the deformer to it, and
  // publish epoch 0 with an empty overlay (the base file IS epoch 0).
  const storage::SnapshotHeader& header = paged_->store().header();
  std::vector<Vec3> positions;
  OCTOPUS_RETURN_NOT_OK(
      ReadAllPositions(snapshot_path_, header, &positions));
  DeformerSpec resolved = spec;
  auto deformer = MakeDeformerResolving(
      &resolved, EstimateMeanEdgeLengthPaged(paged_->store(), positions));
  if (!deformer.ok()) return deformer.status();

  auto epoch0 = std::make_shared<PagedEpoch>();
  epoch0->info = engine::EpochInfo{0, 0};
  paged_prev_positions_ = positions;
  paged_sim_mesh_ =
      std::make_unique<TetraMesh>(std::move(positions), std::vector<Tet>{});
  paged_deformer_ = deformer.MoveValue();
  paged_deformer_->Bind(*paged_sim_mesh_);
  paged_spec_ = resolved;
  {
    std::lock_guard<std::mutex> lock(publish_mu_);
    paged_current_ = std::move(epoch0);
  }
  dynamic_.store(true, std::memory_order_release);
  return Status::OK();
}

DeformerKind VersionedBackend::deformer_kind() const {
  if (!dynamic()) return DeformerKind::kNone;
  return mesh_ != nullptr ? mesh_->deformer_kind() : paged_spec_.kind;
}

engine::EpochInfo VersionedBackend::AdvanceStep() {
  assert(dynamic() && "AdvanceStep requires a bound deformer");
  if (mesh_ != nullptr) return mesh_->AdvanceStep();

  std::lock_guard<std::mutex> step_lock(step_mu_);
  const std::shared_ptr<const PagedEpoch> prev = PinPaged();
  auto next = std::make_shared<PagedEpoch>();
  next->info.epoch = prev->info.epoch + 1;
  next->info.step = prev->info.step + 1;
  // SIMULATE: O(V) deformation of the live array, outside any lock the
  // query path takes.
  paged_deformer_->ApplyStep(static_cast<int>(next->info.step),
                             paged_sim_mesh_.get());
  // Delta pages: rewrite only position pages whose bytes changed;
  // unchanged pages are shared with the previous epoch (or stay in the
  // base file). Adjacency and surface pages are never touched.
  size_t rewritten = 0;
  next->overlay = storage::PositionOverlay::BuildNext(
      paged_->store().header(), prev->overlay.get(),
      paged_prev_positions_, paged_sim_mesh_->positions(), &rewritten);
  paged_prev_positions_ = paged_sim_mesh_->positions();
  last_step_pages_rewritten_.store(rewritten, std::memory_order_release);
  const engine::EpochInfo info = next->info;
  {
    std::lock_guard<std::mutex> lock(publish_mu_);
    paged_current_ = std::move(next);
  }
  return info;
}

engine::EpochInfo VersionedBackend::CurrentEpoch() const {
  if (mesh_ != nullptr) return mesh_->CurrentEpoch();
  const std::shared_ptr<const PagedEpoch> pin = PinPaged();
  return pin != nullptr ? pin->info : engine::EpochInfo{};
}

void VersionedBackend::Execute(std::span<const AABB> boxes,
                               engine::QueryBatchResult* out,
                               PhaseStats* batch_stats) {
  if (paged_ != nullptr) {
    // Pin the epoch for the whole batch: the overlay (and the buffers
    // behind it) stay alive and immutable even if a step publishes a
    // successor mid-batch.
    const std::shared_ptr<const PagedEpoch> pin = PinPaged();
    paged_->ResetStats();
    paged_->RangeQueryBatch(boxes, out, engine_.pool(),
                            pin != nullptr ? pin->overlay.get() : nullptr);
    *batch_stats = paged_->stats();
    if (pin != nullptr) {
      out->epoch = pin->info;
      batch_stats->stale_steps = pin->info.step;
    }
    return;
  }

  // In-memory: pin the position epoch (null = static mesh, read the
  // base), run the batch over a graph view of exactly those positions.
  const std::shared_ptr<const PositionEpoch> pin = mesh_->Pin();
  const MeshGraphView graph = mesh_->PinnedGraph(pin.get());
  contexts_.ResetStats();
  ExecuteOctopusBatch(graph, surface_index_, octopus_options_, boxes, out,
                      engine_.pool(), &contexts_);
  *batch_stats = contexts_.stats();
  if (pin != nullptr) {
    out->epoch = pin->info;
    batch_stats->stale_steps = pin->info.step;
  }
}

}  // namespace octopus::server
