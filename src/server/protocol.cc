// Copyright 2026 The OCTOPUS Reproduction Authors
#include "server/protocol.h"

#include <bit>
#include <cstring>

namespace octopus::server {
namespace {

// --- Little-endian primitives ---

void PutU16(Buffer* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(Buffer* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(Buffer* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutI64(Buffer* out, int64_t v) { PutU64(out, static_cast<uint64_t>(v)); }

void PutF32(Buffer* out, float v) { PutU32(out, std::bit_cast<uint32_t>(v)); }

/// Bounds-checked sequential reader over a frame payload.
class Reader {
 public:
  explicit Reader(std::span<const uint8_t> data) : data_(data) {}

  bool U16(uint16_t* v) {
    if (pos_ + 2 > data_.size()) return false;
    *v = static_cast<uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
    pos_ += 2;
    return true;
  }

  bool U32(uint32_t* v) {
    if (pos_ + 4 > data_.size()) return false;
    uint32_t r = 0;
    for (int i = 0; i < 4; ++i) {
      r |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    *v = r;
    return true;
  }

  bool U64(uint64_t* v) {
    if (pos_ + 8 > data_.size()) return false;
    uint64_t r = 0;
    for (int i = 0; i < 8; ++i) {
      r |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    *v = r;
    return true;
  }

  bool I64(int64_t* v) {
    uint64_t u = 0;
    if (!U64(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }

  bool F32(float* v) {
    uint32_t u = 0;
    if (!U32(&u)) return false;
    *v = std::bit_cast<float>(u);
    return true;
  }

  bool Bytes(size_t n, std::string* out) {
    if (pos_ + n > data_.size()) return false;
    out->assign(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return true;
  }

  size_t remaining() const { return data_.size() - pos_; }
  bool Done() const { return pos_ == data_.size(); }

 private:
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("malformed frame: ") + what);
}

/// Reserves the 8-byte header, returning the offset where the payload
/// length must be patched once the payload has been appended.
size_t BeginFrame(Buffer* out, FrameType type) {
  const size_t header_at = out->size();
  PutU32(out, 0);  // payload length, patched by EndFrame
  out->push_back(static_cast<uint8_t>(type));
  out->push_back(0);  // flags, reserved
  PutU16(out, 0);     // reserved
  return header_at;
}

void EndFrame(Buffer* out, size_t header_at) {
  const size_t payload = out->size() - header_at - kFrameHeaderBytes;
  const auto len = static_cast<uint32_t>(payload);
  (*out)[header_at + 0] = static_cast<uint8_t>(len);
  (*out)[header_at + 1] = static_cast<uint8_t>(len >> 8);
  (*out)[header_at + 2] = static_cast<uint8_t>(len >> 16);
  (*out)[header_at + 3] = static_cast<uint8_t>(len >> 24);
}

void PutBatchStats(Buffer* out, const BatchStatsWire& s) {
  PutI64(out, s.probe_nanos);
  PutI64(out, s.walk_nanos);
  PutI64(out, s.crawl_nanos);
  PutI64(out, s.merge_nanos);  // v5
  PutU64(out, s.queries);
  PutU64(out, s.probed_vertices);
  PutU64(out, s.walk_invocations);
  PutU64(out, s.walk_vertices);
  PutU64(out, s.crawl_edges);
  PutU64(out, s.result_vertices);
  PutU64(out, s.page_hits);
  PutU64(out, s.page_misses);
  PutU64(out, s.page_evictions);
  PutU64(out, s.lease_hits);
  PutU64(out, s.pages_leased);
  PutU64(out, s.pages_distinct);
  PutU32(out, s.batch_queries);
  PutU32(out, s.batch_requests);
  PutU64(out, s.epoch.epoch);
  PutU32(out, s.epoch.step);
  PutU32(out, 0);  // reserved
  PutU64(out, s.trace_id);  // v6
}

bool ReadBatchStats(Reader* r, BatchStatsWire* s) {
  uint32_t reserved = 0;
  return r->I64(&s->probe_nanos) && r->I64(&s->walk_nanos) &&
         r->I64(&s->crawl_nanos) && r->I64(&s->merge_nanos) &&
         r->U64(&s->queries) &&
         r->U64(&s->probed_vertices) && r->U64(&s->walk_invocations) &&
         r->U64(&s->walk_vertices) && r->U64(&s->crawl_edges) &&
         r->U64(&s->result_vertices) && r->U64(&s->page_hits) &&
         r->U64(&s->page_misses) && r->U64(&s->page_evictions) &&
         r->U64(&s->lease_hits) && r->U64(&s->pages_leased) &&
         r->U64(&s->pages_distinct) &&
         r->U32(&s->batch_queries) && r->U32(&s->batch_requests) &&
         r->U64(&s->epoch.epoch) && r->U32(&s->epoch.step) &&
         r->U32(&reserved) && r->U64(&s->trace_id);
}

}  // namespace

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadMagic: return "BAD_MAGIC";
    case ErrorCode::kVersionMismatch: return "VERSION_MISMATCH";
    case ErrorCode::kMalformedFrame: return "MALFORMED_FRAME";
    case ErrorCode::kFrameTooLarge: return "FRAME_TOO_LARGE";
    case ErrorCode::kUnexpectedFrame: return "UNEXPECTED_FRAME";
    case ErrorCode::kOverloaded: return "OVERLOADED";
    case ErrorCode::kShuttingDown: return "SHUTTING_DOWN";
    case ErrorCode::kInternal: return "INTERNAL";
    case ErrorCode::kTimeout: return "TIMEOUT";
    case ErrorCode::kEpochGone: return "EPOCH_GONE";
  }
  return "UNKNOWN";
}

BatchStatsWire BatchStatsWire::FromPhaseStats(const PhaseStats& stats,
                                              uint32_t batch_queries,
                                              uint32_t batch_requests,
                                              engine::EpochInfo epoch) {
  BatchStatsWire w;
  w.epoch = epoch;
  w.probe_nanos = stats.probe_nanos;
  w.walk_nanos = stats.walk_nanos;
  w.crawl_nanos = stats.crawl_nanos;
  w.merge_nanos = stats.merge_nanos;
  w.queries = stats.queries;
  w.probed_vertices = stats.probed_vertices;
  w.walk_invocations = stats.walk_invocations;
  w.walk_vertices = stats.walk_vertices;
  w.crawl_edges = stats.crawl_edges;
  w.result_vertices = stats.result_vertices;
  w.page_hits = stats.page_io.page_hits;
  w.page_misses = stats.page_io.page_misses;
  w.page_evictions = stats.page_io.page_evictions;
  w.lease_hits = stats.page_io.lease_hits;
  w.pages_leased = stats.page_io.pages_leased;
  w.pages_distinct = stats.page_io.pages_distinct;
  w.batch_queries = batch_queries;
  w.batch_requests = batch_requests;
  return w;
}

PhaseStats BatchStatsWire::ToPhaseStats() const {
  PhaseStats s;
  s.probe_nanos = probe_nanos;
  s.walk_nanos = walk_nanos;
  s.crawl_nanos = crawl_nanos;
  s.merge_nanos = merge_nanos;
  s.queries = queries;
  s.probed_vertices = probed_vertices;
  s.walk_invocations = walk_invocations;
  s.walk_vertices = walk_vertices;
  s.crawl_edges = crawl_edges;
  s.result_vertices = result_vertices;
  s.page_io.page_hits = page_hits;
  s.page_io.page_misses = page_misses;
  s.page_io.page_evictions = page_evictions;
  s.page_io.lease_hits = lease_hits;
  s.page_io.pages_leased = pages_leased;
  s.page_io.pages_distinct = pages_distinct;
  s.stale_steps = epoch.step;
  return s;
}

void AppendHello(Buffer* out, const HelloFrame& hello) {
  const size_t h = BeginFrame(out, FrameType::kHello);
  PutU32(out, hello.magic);
  PutU16(out, hello.version);
  PutU16(out, hello.flags);
  EndFrame(out, h);
}

void AppendWelcome(Buffer* out, const WelcomeFrame& welcome) {
  const size_t h = BeginFrame(out, FrameType::kWelcome);
  PutU16(out, welcome.version);
  out->push_back(welcome.paged);
  out->push_back(welcome.dynamic);
  PutU64(out, welcome.num_vertices);
  PutU32(out, welcome.page_bytes);
  PutU32(out, welcome.max_batch_queries);
  EndFrame(out, h);
}

void AppendQueryBatch(Buffer* out, uint64_t request_id,
                      std::span<const AABB> boxes, uint64_t epoch,
                      uint64_t client_span_id) {
  const size_t h = BeginFrame(out, FrameType::kQueryBatch);
  PutU64(out, request_id);
  PutU32(out, static_cast<uint32_t>(boxes.size()));
  PutU32(out, 0);  // reserved
  PutU64(out, epoch);  // 0 = current (v3)
  PutU64(out, client_span_id);  // 0 = no client span (v6)
  for (const AABB& box : boxes) {
    PutF32(out, box.min.x);
    PutF32(out, box.min.y);
    PutF32(out, box.min.z);
    PutF32(out, box.max.x);
    PutF32(out, box.max.y);
    PutF32(out, box.max.z);
  }
  EndFrame(out, h);
}

size_t ResultPayloadBytes(
    std::span<const std::vector<VertexId>> per_query) {
  size_t bytes = kResultFixedBytes + kBatchStatsBytes;
  for (const std::vector<VertexId>& result : per_query) {
    bytes += 4 + result.size() * sizeof(VertexId);
  }
  return bytes;
}

void AppendResult(Buffer* out, uint64_t request_id,
                  const BatchStatsWire& stats,
                  std::span<const std::vector<VertexId>> per_query) {
  const size_t h = BeginFrame(out, FrameType::kResult);
  PutU64(out, request_id);
  PutU32(out, static_cast<uint32_t>(per_query.size()));
  PutU32(out, 0);  // reserved
  PutBatchStats(out, stats);
  for (const std::vector<VertexId>& result : per_query) {
    PutU32(out, static_cast<uint32_t>(result.size()));
    for (const VertexId v : result) PutU32(out, v);
  }
  EndFrame(out, h);
}

void AppendResultMeta(Buffer* out, uint64_t request_id,
                      const BatchStatsWire& stats,
                      std::span<const std::vector<VertexId>> per_query) {
  const size_t h = BeginFrame(out, FrameType::kResult);
  PutU64(out, request_id);
  PutU32(out, static_cast<uint32_t>(per_query.size()));
  PutU32(out, 0);  // reserved
  PutBatchStats(out, stats);
  for (const std::vector<VertexId>& result : per_query) {
    PutU32(out, static_cast<uint32_t>(result.size()));
  }
  // Not EndFrame: the header must announce the FULL payload, including
  // the vertex ids the writer gathers in from the result vectors.
  const auto len = static_cast<uint32_t>(ResultPayloadBytes(per_query));
  (*out)[h + 0] = static_cast<uint8_t>(len);
  (*out)[h + 1] = static_cast<uint8_t>(len >> 8);
  (*out)[h + 2] = static_cast<uint8_t>(len >> 16);
  (*out)[h + 3] = static_cast<uint8_t>(len >> 24);
}

void AppendStatsRequest(Buffer* out) {
  const size_t h = BeginFrame(out, FrameType::kStatsRequest);
  EndFrame(out, h);
}

void AppendStats(Buffer* out, const ServerStatsWire& stats) {
  const size_t h = BeginFrame(out, FrameType::kStats);
  PutU64(out, stats.connections_accepted);
  PutU64(out, stats.connections_active);
  PutU64(out, stats.frames_received);
  PutU64(out, stats.malformed_frames);
  PutU64(out, stats.queries_received);
  PutU64(out, stats.queries_rejected);
  PutU64(out, stats.queries_executed);
  PutU64(out, stats.batches_executed);
  PutU64(out, stats.latency_p50_nanos);
  PutU64(out, stats.latency_p95_nanos);
  PutU64(out, stats.latency_p99_nanos);
  PutU64(out, stats.page_hits);
  PutU64(out, stats.page_misses);
  PutU64(out, stats.page_evictions);
  PutU64(out, stats.lease_hits);
  PutU64(out, stats.pages_leased);
  PutU64(out, stats.pages_distinct);
  PutU64(out, stats.steps_applied);
  EndFrame(out, h);
}

void AppendStep(Buffer* out, const StepFrame& step) {
  const size_t h = BeginFrame(out, FrameType::kStep);
  PutU32(out, step.steps);
  PutU32(out, 0);  // reserved
  EndFrame(out, h);
}

void AppendEpochInfo(Buffer* out, const EpochInfoWire& info) {
  const size_t h = BeginFrame(out, FrameType::kEpochInfo);
  PutU64(out, info.epoch);
  PutU32(out, info.step);
  out->push_back(info.dynamic);
  out->push_back(info.deformer_kind);
  PutU16(out, 0);  // reserved
  PutU64(out, info.last_step_pages_rewritten);
  EndFrame(out, h);
}

void AppendPinEpoch(Buffer* out, const PinEpochFrame& pin) {
  const size_t h = BeginFrame(out, FrameType::kPinEpoch);
  PutU64(out, pin.epoch);
  EndFrame(out, h);
}

void AppendUnpinEpoch(Buffer* out, const PinEpochFrame& unpin) {
  const size_t h = BeginFrame(out, FrameType::kUnpinEpoch);
  PutU64(out, unpin.epoch);
  EndFrame(out, h);
}

void AppendTraceDumpRequest(Buffer* out) {
  const size_t h = BeginFrame(out, FrameType::kTraceDumpRequest);
  EndFrame(out, h);
}

void AppendTraceDump(Buffer* out, const TraceDumpWire& dump) {
  const size_t h = BeginFrame(out, FrameType::kTraceDump);
  PutU64(out, dump.total_recorded);
  PutU32(out, static_cast<uint32_t>(dump.records.size()));
  PutU32(out, 0);  // reserved
  for (const obs::QueryTraceRecord& r : dump.records) {
    PutU64(out, r.trace_id);
    PutU64(out, r.session_id);
    PutU64(out, r.request_id);
    PutU64(out, r.epoch);
    PutU32(out, r.epoch_step);
    PutU32(out, r.queries);
    PutU32(out, r.batch_queries);
    PutU32(out, r.batch_requests);
    PutI64(out, r.arrival_nanos);
    PutI64(out, r.queue_wait_nanos);
    PutI64(out, r.probe_nanos);
    PutI64(out, r.walk_nanos);
    PutI64(out, r.crawl_nanos);
    PutI64(out, r.merge_nanos);
    PutI64(out, r.serialize_nanos);
    PutI64(out, r.total_nanos);
    PutU64(out, r.page_accesses);
    PutU64(out, r.lease_hits);
    PutU64(out, r.result_vertices);
  }
  EndFrame(out, h);
}

void AppendError(Buffer* out, const ErrorFrame& error) {
  const size_t h = BeginFrame(out, FrameType::kError);
  PutU16(out, static_cast<uint16_t>(error.code));
  PutU16(out, 0);  // reserved
  PutU64(out, error.request_id);
  PutU32(out, static_cast<uint32_t>(error.message.size()));
  out->insert(out->end(), error.message.begin(), error.message.end());
  EndFrame(out, h);
}

Result<FrameHeader> ParseFrameHeader(std::span<const uint8_t> data) {
  if (data.size() < kFrameHeaderBytes) {
    return Malformed("header shorter than 8 bytes");
  }
  FrameHeader header;
  header.payload_bytes = static_cast<uint32_t>(data[0]) |
                         (static_cast<uint32_t>(data[1]) << 8) |
                         (static_cast<uint32_t>(data[2]) << 16) |
                         (static_cast<uint32_t>(data[3]) << 24);
  const uint8_t type = data[4];
  const uint8_t flags = data[5];
  if (data[6] != 0 || data[7] != 0) {
    return Malformed("nonzero reserved header bytes");
  }
  if (header.payload_bytes > kMaxFramePayloadBytes) {
    // ResourceExhausted (not InvalidArgument) so the server can answer
    // with the dedicated FRAME_TOO_LARGE error code.
    return Status::ResourceExhausted(
        "frame payload of " + std::to_string(header.payload_bytes) +
        " bytes exceeds the " + std::to_string(kMaxFramePayloadBytes) +
        "-byte cap");
  }
  if (type < static_cast<uint8_t>(FrameType::kHello) ||
      type > static_cast<uint8_t>(FrameType::kTraceDump)) {
    return Malformed("unknown frame type");
  }
  if (flags != 0) return Malformed("nonzero reserved flags");
  header.type = static_cast<FrameType>(type);
  return header;
}

Status ParseHello(std::span<const uint8_t> payload, HelloFrame* out) {
  Reader r(payload);
  if (!r.U32(&out->magic) || !r.U16(&out->version) || !r.U16(&out->flags) ||
      !r.Done()) {
    return Malformed("HELLO payload must be exactly 8 bytes");
  }
  return Status::OK();
}

Status ParseWelcome(std::span<const uint8_t> payload, WelcomeFrame* out) {
  Reader r(payload);
  uint16_t packed = 0;
  if (!r.U16(&out->version) || !r.U16(&packed) ||
      !r.U64(&out->num_vertices) || !r.U32(&out->page_bytes) ||
      !r.U32(&out->max_batch_queries) || !r.Done()) {
    return Malformed("WELCOME payload size mismatch");
  }
  out->paged = static_cast<uint8_t>(packed & 0xFF);
  out->dynamic = static_cast<uint8_t>(packed >> 8);
  return Status::OK();
}

Status ParseQueryBatch(std::span<const uint8_t> payload,
                       uint64_t* request_id, std::vector<AABB>* boxes,
                       uint64_t* epoch, uint64_t* client_span_id) {
  Reader r(payload);
  uint32_t count = 0;
  uint32_t reserved = 0;
  if (!r.U64(request_id) || !r.U32(&count) || !r.U32(&reserved) ||
      !r.U64(epoch) || !r.U64(client_span_id)) {
    return Malformed("QUERY_BATCH header truncated");
  }
  if (r.remaining() != static_cast<size_t>(count) * kQueryBoxBytes) {
    return Malformed("QUERY_BATCH query count disagrees with payload size");
  }
  boxes->clear();
  boxes->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    AABB box;
    if (!r.F32(&box.min.x) || !r.F32(&box.min.y) || !r.F32(&box.min.z) ||
        !r.F32(&box.max.x) || !r.F32(&box.max.y) || !r.F32(&box.max.z)) {
      return Malformed("QUERY_BATCH truncated query");
    }
    boxes->push_back(box);
  }
  return Status::OK();
}

Status ParseResult(std::span<const uint8_t> payload, uint64_t* request_id,
                   BatchStatsWire* stats,
                   std::vector<std::vector<VertexId>>* per_query) {
  Reader r(payload);
  uint32_t num_queries = 0;
  uint32_t reserved = 0;
  if (!r.U64(request_id) || !r.U32(&num_queries) || !r.U32(&reserved) ||
      !ReadBatchStats(&r, stats)) {
    return Malformed("RESULT header truncated");
  }
  // Each query needs at least its 4-byte count: bound the allocation by
  // what the payload can actually carry before resizing.
  if (static_cast<size_t>(num_queries) * 4 > r.remaining()) {
    return Malformed("RESULT query count disagrees with payload size");
  }
  per_query->clear();
  per_query->resize(num_queries);
  for (uint32_t q = 0; q < num_queries; ++q) {
    uint32_t count = 0;
    if (!r.U32(&count)) return Malformed("RESULT count truncated");
    if (r.remaining() < static_cast<size_t>(count) * 4) {
      return Malformed("RESULT ids truncated");
    }
    std::vector<VertexId>& ids = (*per_query)[q];
    ids.resize(count);
    for (uint32_t i = 0; i < count; ++i) {
      r.U32(&ids[i]);
    }
  }
  if (!r.Done()) return Malformed("RESULT trailing bytes");
  return Status::OK();
}

Status ParseStats(std::span<const uint8_t> payload, ServerStatsWire* out) {
  Reader r(payload);
  if (!r.U64(&out->connections_accepted) ||
      !r.U64(&out->connections_active) || !r.U64(&out->frames_received) ||
      !r.U64(&out->malformed_frames) || !r.U64(&out->queries_received) ||
      !r.U64(&out->queries_rejected) || !r.U64(&out->queries_executed) ||
      !r.U64(&out->batches_executed) || !r.U64(&out->latency_p50_nanos) ||
      !r.U64(&out->latency_p95_nanos) || !r.U64(&out->latency_p99_nanos) ||
      !r.U64(&out->page_hits) || !r.U64(&out->page_misses) ||
      !r.U64(&out->page_evictions) || !r.U64(&out->lease_hits) ||
      !r.U64(&out->pages_leased) || !r.U64(&out->pages_distinct) ||
      !r.U64(&out->steps_applied) || !r.Done()) {
    return Malformed("STATS payload size mismatch");
  }
  return Status::OK();
}

Status ParseStep(std::span<const uint8_t> payload, StepFrame* out) {
  Reader r(payload);
  uint32_t reserved = 0;
  if (!r.U32(&out->steps) || !r.U32(&reserved) || !r.Done()) {
    return Malformed("STEP payload must be exactly 8 bytes");
  }
  if (out->steps > kMaxStepsPerFrame) {
    return Malformed("STEP count exceeds the per-frame cap");
  }
  return Status::OK();
}

Status ParseEpochInfo(std::span<const uint8_t> payload,
                      EpochInfoWire* out) {
  Reader r(payload);
  uint16_t packed = 0;
  uint16_t reserved = 0;
  if (!r.U64(&out->epoch) || !r.U32(&out->step) || !r.U16(&packed) ||
      !r.U16(&reserved) || !r.U64(&out->last_step_pages_rewritten) ||
      !r.Done()) {
    return Malformed("EPOCH_INFO payload size mismatch");
  }
  out->dynamic = static_cast<uint8_t>(packed & 0xFF);
  out->deformer_kind = static_cast<uint8_t>(packed >> 8);
  return Status::OK();
}

Status ParsePinEpoch(std::span<const uint8_t> payload,
                     PinEpochFrame* out) {
  Reader r(payload);
  if (!r.U64(&out->epoch) || !r.Done()) {
    return Malformed("PIN/UNPIN_EPOCH payload must be exactly 8 bytes");
  }
  return Status::OK();
}

Status ParseTraceDump(std::span<const uint8_t> payload,
                      TraceDumpWire* out) {
  Reader r(payload);
  uint32_t count = 0;
  uint32_t reserved = 0;
  if (!r.U64(&out->total_recorded) || !r.U32(&count) || !r.U32(&reserved)) {
    return Malformed("TRACE_DUMP header truncated");
  }
  if (reserved != 0) {
    return Malformed("TRACE_DUMP nonzero reserved field");
  }
  if (r.remaining() != static_cast<size_t>(count) * kTraceRecordBytes) {
    return Malformed(
        "TRACE_DUMP record count disagrees with payload size");
  }
  out->records.clear();
  out->records.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    obs::QueryTraceRecord rec;
    if (!r.U64(&rec.trace_id) || !r.U64(&rec.session_id) ||
        !r.U64(&rec.request_id) || !r.U64(&rec.epoch) ||
        !r.U32(&rec.epoch_step) || !r.U32(&rec.queries) ||
        !r.U32(&rec.batch_queries) || !r.U32(&rec.batch_requests) ||
        !r.I64(&rec.arrival_nanos) || !r.I64(&rec.queue_wait_nanos) ||
        !r.I64(&rec.probe_nanos) || !r.I64(&rec.walk_nanos) ||
        !r.I64(&rec.crawl_nanos) || !r.I64(&rec.merge_nanos) ||
        !r.I64(&rec.serialize_nanos) || !r.I64(&rec.total_nanos) ||
        !r.U64(&rec.page_accesses) || !r.U64(&rec.lease_hits) ||
        !r.U64(&rec.result_vertices)) {
      return Malformed("TRACE_DUMP truncated record");
    }
    out->records.push_back(rec);
  }
  if (!r.Done()) return Malformed("TRACE_DUMP trailing bytes");
  return Status::OK();
}

Status ParseError(std::span<const uint8_t> payload, ErrorFrame* out) {
  Reader r(payload);
  uint16_t code = 0;
  uint16_t reserved = 0;
  uint32_t msg_len = 0;
  if (!r.U16(&code) || !r.U16(&reserved) || !r.U64(&out->request_id) ||
      !r.U32(&msg_len) || msg_len != r.remaining() ||
      !r.Bytes(msg_len, &out->message)) {
    return Malformed("ERROR payload size mismatch");
  }
  if (code < static_cast<uint16_t>(ErrorCode::kBadMagic) ||
      code > static_cast<uint16_t>(ErrorCode::kEpochGone)) {
    return Malformed("ERROR unknown code");
  }
  out->code = static_cast<ErrorCode>(code);
  return Status::OK();
}

}  // namespace octopus::server
