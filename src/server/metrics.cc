// Copyright 2026 The OCTOPUS Reproduction Authors
#include "server/metrics.h"

#include <bit>
#include <cmath>

namespace octopus::server {

void LatencyHistogram::Record(uint64_t nanos) {
  const int bucket =
      nanos == 0 ? 0 : std::bit_width(nanos) - 1;  // floor(log2)
  buckets_[bucket < kBuckets ? bucket : kBuckets - 1] += 1;
  ++count_;
  if (nanos > max_nanos_) max_nanos_ = nanos;
  // Saturating sum: one u64-max sample must not wrap the total.
  sum_nanos_ = sum_nanos_ + nanos < sum_nanos_
                   ? ~uint64_t{0}
                   : sum_nanos_ + nanos;
}

uint64_t LatencyHistogram::PercentileNanos(double p) const {
  if (count_ == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Rank of the quantile sample, 1-based (nearest-rank definition:
  // ceil(p * n), clamped to [1, n]).
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(p * static_cast<double>(count_)));
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      // The last bucket is open-ended (everything >= 2^62 ns clamps
      // into it), so its nominal bound would underestimate; report the
      // observed max instead.
      if (i == kBuckets - 1) return max_nanos_;
      const uint64_t upper = (uint64_t{2} << i) - 1;  // bucket upper bound
      return upper < max_nanos_ ? upper : max_nanos_;
    }
  }
  return max_nanos_;
}

ServerStatsWire ServerMetrics::ToWire() const {
  ServerStatsWire w;
  w.connections_accepted = connections_accepted;
  w.connections_active = connections_active();
  w.frames_received = frames_received;
  w.malformed_frames = malformed_frames;
  w.queries_received = queries_received;
  w.queries_rejected = queries_rejected;
  w.queries_executed = queries_executed;
  w.batches_executed = batches_executed;
  w.latency_p50_nanos = request_latency.PercentileNanos(0.50);
  w.latency_p95_nanos = request_latency.PercentileNanos(0.95);
  w.latency_p99_nanos = request_latency.PercentileNanos(0.99);
  w.page_hits = engine_total.page_io.page_hits;
  w.page_misses = engine_total.page_io.page_misses;
  w.page_evictions = engine_total.page_io.page_evictions;
  w.lease_hits = engine_total.page_io.lease_hits;
  w.pages_leased = engine_total.page_io.pages_leased;
  w.pages_distinct = engine_total.page_io.pages_distinct;
  return w;
}

}  // namespace octopus::server
