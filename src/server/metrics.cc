// Copyright 2026 The OCTOPUS Reproduction Authors
#include "server/metrics.h"

#include <bit>
#include <cmath>

namespace octopus::server {

int LatencyHistogram::BucketIndex(uint64_t nanos) {
  if (nanos < kSubBuckets) return static_cast<int>(nanos);
  const int octave = std::bit_width(nanos) - 1;  // floor(log2), >= 4
  const int sub = static_cast<int>(
      (nanos >> (octave - kFirstOctave)) & (kSubBuckets - 1));
  const int index =
      kSubBuckets + (octave - kFirstOctave) * kSubBuckets + sub;
  return index < kBuckets ? index : kBuckets - 1;
}

uint64_t LatencyHistogram::BucketUpperNanos(int index) {
  if (index < kSubBuckets) return static_cast<uint64_t>(index);
  if (index >= kBuckets - 1) return ~uint64_t{0};  // open-ended top
  const int octave = kFirstOctave + (index - kSubBuckets) / kSubBuckets;
  const int sub = (index - kSubBuckets) % kSubBuckets;
  const uint64_t base = uint64_t{1} << octave;
  const uint64_t width = uint64_t{1} << (octave - kFirstOctave);
  return base + static_cast<uint64_t>(sub + 1) * width - 1;
}

std::vector<uint64_t> LatencyHistogram::BucketUpperBounds() {
  std::vector<uint64_t> bounds(kBuckets);
  for (int i = 0; i < kBuckets; ++i) bounds[i] = BucketUpperNanos(i);
  return bounds;
}

void LatencyHistogram::Record(uint64_t nanos) {
  buckets_[BucketIndex(nanos)].fetch_add(1, std::memory_order_relaxed);
  // CAS-max: lossless under concurrent writers.
  uint64_t seen = max_nanos_.load(std::memory_order_relaxed);
  while (nanos > seen &&
         !max_nanos_.compare_exchange_weak(seen, nanos,
                                           std::memory_order_relaxed)) {
  }
  // Saturating sum: one u64-max sample must not wrap the total.
  uint64_t sum = sum_nanos_.load(std::memory_order_relaxed);
  for (;;) {
    const uint64_t next = sum + nanos < sum ? ~uint64_t{0} : sum + nanos;
    if (sum_nanos_.compare_exchange_weak(sum, next,
                                         std::memory_order_relaxed)) {
      break;
    }
  }
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (int i = 0; i < kBuckets; ++i) {
    const uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t seen = max_nanos_.load(std::memory_order_relaxed);
  const uint64_t other_max = other.max_nanos();
  while (other_max > seen &&
         !max_nanos_.compare_exchange_weak(seen, other_max,
                                           std::memory_order_relaxed)) {
  }
  uint64_t sum = sum_nanos_.load(std::memory_order_relaxed);
  const uint64_t add = other.sum_nanos();
  for (;;) {
    const uint64_t next = sum + add < sum ? ~uint64_t{0} : sum + add;
    if (sum_nanos_.compare_exchange_weak(sum, next,
                                         std::memory_order_relaxed)) {
      break;
    }
  }
}

uint64_t LatencyHistogram::count() const {
  uint64_t total = 0;
  for (const auto& b : buckets_) {
    total += b.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<uint64_t> LatencyHistogram::bucket_counts() const {
  std::vector<uint64_t> counts(kBuckets);
  for (int i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

void LatencyHistogram::CopyFrom(const LatencyHistogram& other) {
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[i].store(other.buckets_[i].load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  }
  max_nanos_.store(other.max_nanos(), std::memory_order_relaxed);
  sum_nanos_.store(other.sum_nanos(), std::memory_order_relaxed);
}

uint64_t LatencyHistogram::PercentileNanos(double p) const {
  const std::vector<uint64_t> counts = bucket_counts();
  uint64_t n = 0;
  for (uint64_t c : counts) n += c;
  if (n == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Rank of the quantile sample, 1-based (nearest-rank definition:
  // ceil(p * n), clamped to [1, n]).
  uint64_t rank =
      static_cast<uint64_t>(std::ceil(p * static_cast<double>(n)));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  const uint64_t observed_max = max_nanos();
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += counts[i];
    if (seen >= rank) {
      // A bucket's nominal bound can overshoot the samples inside it
      // (and the top bucket is open-ended); report no more than the
      // observed max.
      const uint64_t upper = BucketUpperNanos(i);
      return upper < observed_max ? upper : observed_max;
    }
  }
  return observed_max;
}

void ServerMetrics::CopyFrom(const ServerMetrics& other) {
  connections_accepted.store(
      other.connections_accepted.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  connections_closed.store(
      other.connections_closed.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  frames_received.store(
      other.frames_received.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  malformed_frames.store(
      other.malformed_frames.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  queries_received.store(
      other.queries_received.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  queries_rejected.store(
      other.queries_rejected.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  queries_executed.store(
      other.queries_executed.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  batches_executed.store(
      other.batches_executed.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  results_sent.store(other.results_sent.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  errors_sent.store(other.errors_sent.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  slow_queries.store(other.slow_queries.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  serialize_nanos_total.store(
      other.serialize_nanos_total.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  request_latency = other.request_latency;
  loop_stall = other.loop_stall;
  const PhaseStats engine = other.EngineTotal();
  common::MutexLock lock(engine_mu_);
  engine_total = engine;
}

ServerStatsWire ServerMetrics::ToWire() const {
  ServerStatsWire w;
  w.connections_accepted =
      connections_accepted.load(std::memory_order_relaxed);
  w.connections_active = connections_active();
  w.frames_received = frames_received.load(std::memory_order_relaxed);
  w.malformed_frames = malformed_frames.load(std::memory_order_relaxed);
  w.queries_received = queries_received.load(std::memory_order_relaxed);
  w.queries_rejected = queries_rejected.load(std::memory_order_relaxed);
  w.queries_executed = queries_executed.load(std::memory_order_relaxed);
  w.batches_executed = batches_executed.load(std::memory_order_relaxed);
  w.latency_p50_nanos = request_latency.PercentileNanos(0.50);
  w.latency_p95_nanos = request_latency.PercentileNanos(0.95);
  w.latency_p99_nanos = request_latency.PercentileNanos(0.99);
  const PhaseStats engine = EngineTotal();
  w.page_hits = engine.page_io.page_hits;
  w.page_misses = engine.page_io.page_misses;
  w.page_evictions = engine.page_io.page_evictions;
  w.lease_hits = engine.page_io.lease_hits;
  w.pages_leased = engine.page_io.pages_leased;
  w.pages_distinct = engine.page_io.pages_distinct;
  return w;
}

}  // namespace octopus::server
