// Copyright 2026 The OCTOPUS Reproduction Authors
// Outbound-frame representation for the threaded server front end.
//
// A RESULT frame's payload is dominated by the per-query vertex-id
// vectors the engine already produced; copying them into a contiguous
// frame buffer (what `AppendResult` does) doubles the memory traffic of
// every response. `OutFrame` instead keeps the frame's fixed bytes
// (header + request id + stats block + per-query count words, from
// `AppendResultMeta`) in one small buffer and carries the result
// vectors by move. `BuildFrameIov` lays the wire image over both —
// meta prefix, vec 0, count word 1, vec 1, ... — as an iovec for a
// single gathering `sendmsg`, so result bytes go from engine output to
// socket without an intermediate copy.
//
// Inline replies (WELCOME, STATS, ERROR, ...) are byte-only `OutFrame`s
// with `vecs` empty; the same flush path handles both.
#ifndef OCTOPUS_SERVER_IO_PIPELINE_H_
#define OCTOPUS_SERVER_IO_PIPELINE_H_

#include <sys/uio.h>

#include <cstddef>
#include <vector>

#include "server/protocol.h"

namespace octopus::server {

/// \brief One outbound frame: framed fixed bytes plus (for zero-copy
/// RESULTs) the per-query vertex vectors still in engine form.
struct OutFrame {
  /// Complete frame bytes when `vecs` is empty; otherwise an
  /// `AppendResultMeta` buffer whose header already announces the full
  /// payload length, with the count words contiguous at the tail.
  Buffer bytes;
  /// Per-query result vectors, spliced onto the wire after their count
  /// words. Must be empty or match the meta buffer's query count.
  std::vector<std::vector<VertexId>> vecs;

  /// Total bytes this frame puts on the wire.
  size_t WireBytes() const;
};

/// Fills `iov` with the unsent part of `frame`'s wire image, starting
/// `offset` bytes in, up to `max_iov` entries. Returns the number of
/// entries written; fewer than the frame's remaining segments when the
/// cap hits (the caller just flushes again). The iovecs point into
/// `frame` — valid only while the frame is alive and unmodified.
int BuildFrameIov(const OutFrame& frame, size_t offset, struct iovec* iov,
                  int max_iov);

}  // namespace octopus::server

#endif  // OCTOPUS_SERVER_IO_PIPELINE_H_
