// Copyright 2026 The OCTOPUS Reproduction Authors
#include "server/batch_scheduler.h"

#include <algorithm>
#include <utility>

namespace octopus::server {

bool BatchScheduler::Enqueue(PendingRequest request) {
  const size_t queries = request.boxes.size();
  // An empty queue always admits, even a request larger than the bound
  // by itself — mirroring the batch cap's execute-alone rule, so an
  // oversized request is served (alone) rather than rejected forever.
  if (!pending_.empty() &&
      pending_query_count_ + queries > options_.max_pending_queries) {
    return false;
  }
  pending_query_count_ += queries;
  pending_.push_back(std::move(request));
  return true;
}

int64_t BatchScheduler::NanosUntilDue(int64_t now_nanos) const {
  if (pending_.empty()) return -1;
  if (pending_query_count_ >= options_.max_batch_queries) return 0;
  const int64_t due = pending_.front().arrival_nanos + options_.window_nanos;
  return std::max<int64_t>(due - now_nanos, 0);
}

bool BatchScheduler::ShouldExecute(int64_t now_nanos) const {
  return !pending_.empty() && NanosUntilDue(now_nanos) == 0;
}

void BatchScheduler::ExecuteReady(VersionedBackend* backend,
                                  std::vector<CompletedRequest>* completed,
                                  ServerMetrics* metrics,
                                  int64_t dispatch_nanos) {
  if (pending_.empty()) return;

  // Pack whole requests FIFO until the size cap. Always take at least
  // one, so an oversized request executes alone rather than starving.
  size_t take = 0;
  size_t batch_queries = 0;
  while (take < pending_.size()) {
    const size_t next = pending_[take].boxes.size();
    if (take > 0 && batch_queries + next > options_.max_batch_queries) {
      break;
    }
    batch_queries += next;
    ++take;
  }

  batch_.boxes.clear();
  batch_.boxes.reserve(batch_queries);
  for (size_t i = 0; i < take; ++i) {
    batch_.boxes.insert(batch_.boxes.end(), pending_[i].boxes.begin(),
                        pending_[i].boxes.end());
  }

  PhaseStats batch_stats;
  backend->Execute(batch_.View(), &batch_results_, &batch_stats);

  metrics->batches_executed += 1;
  metrics->queries_executed += batch_queries;
  metrics->MergeEngine(batch_stats);

  const BatchStatsWire wire = BatchStatsWire::FromPhaseStats(
      batch_stats, static_cast<uint32_t>(batch_queries),
      static_cast<uint32_t>(take), batch_results_.epoch);

  // Demultiplex: each request gets its contiguous slice of the batch.
  size_t offset = 0;
  for (size_t i = 0; i < take; ++i) {
    PendingRequest& request = pending_[i];
    CompletedRequest done;
    done.session_id = request.session_id;
    done.request_id = request.request_id;
    done.arrival_nanos = request.arrival_nanos;
    done.dispatch_nanos = dispatch_nanos;
    done.client_span_id = request.client_span_id;
    done.stats = wire;
    done.per_query.reserve(request.boxes.size());
    for (size_t q = 0; q < request.boxes.size(); ++q) {
      done.per_query.push_back(
          std::move(batch_results_.per_query[offset + q]));
    }
    offset += request.boxes.size();
    completed->push_back(std::move(done));
  }

  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<ptrdiff_t>(take));
  pending_query_count_ -= batch_queries;
}

bool BatchScheduler::HasPendingFor(uint64_t session_id) const {
  for (const PendingRequest& request : pending_) {
    if (request.session_id == session_id) return true;
  }
  return false;
}

void BatchScheduler::DropSession(uint64_t session_id) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->session_id == session_id) {
      pending_query_count_ -= it->boxes.size();
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace octopus::server
