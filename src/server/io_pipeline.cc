// Copyright 2026 The OCTOPUS Reproduction Authors
#include "server/io_pipeline.h"

namespace octopus::server {

size_t OutFrame::WireBytes() const {
  size_t total = bytes.size();
  for (const std::vector<VertexId>& v : vecs) {
    total += v.size() * sizeof(VertexId);
  }
  return total;
}

int BuildFrameIov(const OutFrame& frame, size_t offset, struct iovec* iov,
                  int max_iov) {
  int n = 0;
  // Appends one wire segment, consuming `offset` across segments so the
  // first iovec starts exactly at the first unsent byte.
  const auto add = [&](const uint8_t* base, size_t len) {
    if (len == 0 || n >= max_iov) return;
    if (offset >= len) {
      offset -= len;
      return;
    }
    iov[n].iov_base = const_cast<uint8_t*>(base) + offset;
    iov[n].iov_len = len - offset;
    offset = 0;
    ++n;
  };
  if (frame.vecs.empty()) {
    add(frame.bytes.data(), frame.bytes.size());
    return n;
  }
  // Meta buffer layout: [.. fixed .. count_0 count_1 .. count_{n-1}];
  // wire layout interleaves: [.. fixed .. count_0] vec_0 [count_1]
  // vec_1 ... — each count word is owed its query's ids right after it.
  const size_t through_count0 = kResultMetaBytesBeforeCounts + 4;
  add(frame.bytes.data(), through_count0);
  for (size_t i = 0; i < frame.vecs.size(); ++i) {
    const std::vector<VertexId>& v = frame.vecs[i];
    add(reinterpret_cast<const uint8_t*>(v.data()),
        v.size() * sizeof(VertexId));
    if (i + 1 < frame.vecs.size()) {
      add(frame.bytes.data() + through_count0 + 4 * i, 4);
    }
  }
  return n;
}

}  // namespace octopus::server
