// Copyright 2026 The OCTOPUS Reproduction Authors
// Cross-client batch coalescing: the scheduler collects range-query
// requests arriving from many connections and folds them into one
// `engine::QueryBatch` when either (a) the oldest pending request's
// coalescing window expires or (b) enough queries have accumulated —
// then executes once on the backend and demultiplexes per-request
// results. This is where the paper's "tens to hundreds of queries per
// time step" batching meets a multi-tenant server: concurrent monitoring
// clients share one probe->walk->crawl sweep per window instead of one
// per request.
//
// No threads of its own: the server's scheduler thread drives it under
// one mutex, asking `NanosUntilDue` to size its condition-variable wait
// and calling `ExecuteReady` whenever a batch is due. Admission
// (`Enqueue`, from the I/O threads) synchronizes on that same mutex, so
// the scheduler never needs internal locking.
#ifndef OCTOPUS_SERVER_BATCH_SCHEDULER_H_
#define OCTOPUS_SERVER_BATCH_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "common/aabb.h"
#include "engine/query_batch.h"
#include "server/metrics.h"
#include "server/protocol.h"
#include "server/versioned_backend.h"

namespace octopus::server {

struct SchedulerOptions {
  /// Coalescing window: a pending request executes at latest this long
  /// after it arrived. 0 = execute as soon as the loop drains its
  /// sockets (still coalescing whatever arrived in the same poll round).
  int64_t window_nanos = 2'000'000;  // 2 ms
  /// A batch executes early once it holds at least this many queries.
  /// Whole requests are packed; a single request larger than the cap
  /// executes alone (the cap tunes coalescing, it is not a protocol
  /// limit).
  size_t max_batch_queries = 1024;
  /// Admission bound: total queries waiting to execute. Requests that
  /// would exceed it are rejected with an OVERLOADED error frame —
  /// except into an empty queue, which always admits, so a single
  /// request larger than the bound is served alone instead of being
  /// rejected forever.
  size_t max_pending_queries = 8192;
};

/// One client request waiting for execution.
struct PendingRequest {
  uint64_t session_id = 0;
  uint64_t request_id = 0;
  std::vector<AABB> boxes;
  int64_t arrival_nanos = 0;  ///< event-loop monotonic clock
  /// Client-propagated span id (v6); 0 = the client sent none. Carried
  /// through execution into the slow-query log, never interpreted.
  uint64_t client_span_id = 0;
};

/// One executed request, ready to encode as a RESULT frame.
struct CompletedRequest {
  uint64_t session_id = 0;
  uint64_t request_id = 0;
  int64_t arrival_nanos = 0;
  /// When the batch holding this request started executing — the
  /// request's queue wait is `dispatch_nanos - arrival_nanos` (0 for
  /// inline paths that never queued).
  int64_t dispatch_nanos = 0;
  BatchStatsWire stats;  ///< stats of the coalesced batch that served it
  /// The request's slice of the batch results, in request query order.
  std::vector<std::vector<VertexId>> per_query;
  uint64_t client_span_id = 0;  ///< propagated from the request (v6)
};

/// Not internally synchronized BY DESIGN: the server declares its
/// `scheduler_` field `GUARDED_BY(sched_mu_)`, so clang's
/// thread-safety analysis rejects any unlocked call at compile time —
/// a mutex here would re-buy that guarantee at runtime cost and hide
/// the admission/execution critical sections the server deliberately
/// shares (admission blocks while a batch runs).
class BatchScheduler {
 public:
  explicit BatchScheduler(SchedulerOptions options) : options_(options) {}

  const SchedulerOptions& options() const { return options_; }

  /// Admission control: accepts the request into the pending queue, or
  /// returns false (queue full — caller sends OVERLOADED) leaving the
  /// queue untouched. Zero-query requests are accepted (they complete
  /// with an empty result at the next execution point).
  bool Enqueue(PendingRequest request);

  bool HasPending() const { return !pending_.empty(); }
  size_t pending_queries() const { return pending_query_count_; }

  /// Nanoseconds until the oldest pending request's window expires;
  /// <= 0 means a batch is due now, -1 means nothing is pending.
  int64_t NanosUntilDue(int64_t now_nanos) const;

  /// True when `ExecuteReady` would execute at least one batch now
  /// (window expired or the size trigger reached).
  bool ShouldExecute(int64_t now_nanos) const;

  /// Packs pending requests (FIFO, whole requests, up to the size cap)
  /// into one batch, executes it on `backend` (against the epoch the
  /// backend pins for the batch — every stamped RESULT of the batch
  /// carries that one epoch), and appends one `CompletedRequest` per
  /// packed request to `completed`. Updates `metrics` (batch/query
  /// counters + engine totals). Call in a loop while `ShouldExecute` —
  /// one call executes exactly one batch. `dispatch_nanos` (the loop's
  /// clock at the call) is stamped onto every completed request so the
  /// flight recorder can attribute queue wait.
  void ExecuteReady(VersionedBackend* backend,
                    std::vector<CompletedRequest>* completed,
                    ServerMetrics* metrics, int64_t dispatch_nanos = 0);

  /// Drops every pending request of a disconnected session so its
  /// queries are not executed for nobody.
  void DropSession(uint64_t session_id);

  /// True while any pending request belongs to `session_id` (used to
  /// keep a half-closed session alive until it has been answered).
  bool HasPendingFor(uint64_t session_id) const;

 private:
  SchedulerOptions options_;
  std::deque<PendingRequest> pending_;
  size_t pending_query_count_ = 0;
  // Scratch reused across batches.
  engine::QueryBatch batch_;
  engine::QueryBatchResult batch_results_;
};

}  // namespace octopus::server

#endif  // OCTOPUS_SERVER_BATCH_SCHEDULER_H_
