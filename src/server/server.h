// Copyright 2026 The OCTOPUS Reproduction Authors
// The network query service: a single-threaded, poll-based TCP server
// speaking the OCTP protocol. Non-blocking sockets, per-connection
// framing and write buffering, and a `BatchScheduler` at its core that
// coalesces queries across connections into one engine batch per
// window. Query-execution parallelism lives inside the backend's
// `QueryEngine` thread pool, so the loop thread stays responsive-enough
// while remaining the only thread touching sockets, sessions, scheduler
// and metrics — no locks anywhere in the service path.
//
// Lifecycle: `Start` binds and listens (port 0 = ephemeral, then
// `port()` reports the actual one), `Run` blocks in the event loop, and
// `Stop` — safe from any thread or signal handler — triggers a graceful
// shutdown: stop accepting, execute every pending batch, flush write
// buffers (bounded by `drain_timeout_nanos`), close.
#ifndef OCTOPUS_SERVER_SERVER_H_
#define OCTOPUS_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/event_journal.h"
#include "obs/http_endpoint.h"
#include "obs/trace.h"
#include "server/batch_scheduler.h"
#include "server/metrics.h"
#include "server/protocol.h"
#include "server/versioned_backend.h"

namespace octopus::server {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = pick an ephemeral port
  int backlog = 64;
  size_t max_connections = 256;
  SchedulerOptions scheduler;
  /// Graceful-shutdown bound on flushing buffered responses.
  int64_t drain_timeout_nanos = 2'000'000'000;
  /// Backpressure watermark: a session whose unsent output exceeds this
  /// is not read from (no new requests admitted) until it drains, so a
  /// client that pipelines without reading cannot grow server memory
  /// unboundedly.
  size_t max_session_out_bytes = 64u << 20;
  /// Idle/handshake timeout: a session that has not delivered a single
  /// byte for this long — including one that never sent its HELLO — is
  /// answered with ERROR(TIMEOUT) and closed, so silent connections
  /// cannot pin `max_connections` slots forever. Sessions with a
  /// request pending in the scheduler are exempt (they are waiting on
  /// us, not the reverse). 0 disables.
  int64_t idle_timeout_nanos = 300'000'000'000;  // 5 min
  /// Introspection HTTP port on `bind_address` (/metrics, /healthz,
  /// /readyz, /epochs, /journal): -1 disables the endpoint, 0 binds an
  /// ephemeral port (read it back via `metrics_port()`). Served by the
  /// same event loop — OCTP STATS stays the authoritative snapshot;
  /// /metrics renders the same single-writer counters for scrapers.
  int metrics_port = -1;
  /// Lifecycle event journal (non-owning; may be null). The server
  /// emits session/overload/drain events into it, forwards it to the
  /// backend for step/epoch events at construction, serves it at
  /// /journal and counts it in /metrics. The caller keeps it alive for
  /// the server's lifetime.
  obs::EventJournal* journal = nullptr;
  /// /readyz flips to 503 when the newest epoch publication is older
  /// than this (a stepper that stopped stepping); 0 disables the lag
  /// check. Only meaningful on dynamic backends.
  int64_t ready_max_publish_lag_nanos = 0;
  /// Flight-recorder ring capacity in records; 0 disables tracing
  /// entirely (one predictable branch per request — see obs/trace.h).
  size_t trace_ring_slots = 1024;
  /// Requests whose arrival -> response-enqueue wall clock reaches this
  /// are counted and logged as structured slow-query lines on stderr.
  /// 0 disables.
  int64_t slow_query_nanos = 0;
};

class QueryServer {
 public:
  QueryServer(std::unique_ptr<VersionedBackend> backend,
              ServerOptions options);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Creates the listener and the wake pipe. After OK, `port()` is the
  /// bound port.
  Status Start();

  uint16_t port() const { return port_; }

  /// The event loop; blocks the calling thread until `Stop`. Returns
  /// non-OK only on unrecoverable loop errors (poll failure).
  Status Run();

  /// Requests a graceful shutdown; callable from any thread and from
  /// signal handlers (one atomic store + one pipe write).
  void Stop();

  /// Bound /metrics port; 0 while the endpoint is disabled.
  uint16_t metrics_port() const { return metrics_http_.port(); }

  /// Loop-thread state; read it from other threads only after `Run`
  /// has returned.
  const ServerMetrics& metrics() const { return metrics_; }
  /// The flight-recorder ring (loop-thread state, same caveat).
  const obs::FlightRecorder& recorder() const { return recorder_; }
  /// Renders the Prometheus exposition /metrics serves — public so
  /// tests can assert STATS parity without an HTTP round trip.
  std::string RenderMetricsText() const;
  /// Renders the JSON /epochs serves (retention-ring view; a static
  /// backend reports "dynamic": false with no entries) — public for
  /// the same reason.
  std::string RenderEpochsJson() const;
  /// Renders the JSON /journal serves ({"total","capacity","events"}),
  /// empty-events when no journal is attached.
  std::string RenderJournalJson() const;
  /// The /readyz answer: 200 + JSON when ready, 503 + JSON when the
  /// epoch-publication lag is over the bound or the spill sidecar has
  /// failing epochs.
  obs::HttpTextEndpoint::Response ReadyzResponse() const;
  /// The backend. `AdvanceStep`/`CurrentEpoch` on it are safe from a
  /// stepper thread while the loop runs (see VersionedBackend's thread
  /// model); everything else is loop-thread state.
  VersionedBackend* backend() { return backend_.get(); }

 private:
  struct Session;

  int64_t NowNanos() const;
  Status Listen();
  void AcceptNew();
  void ReadSession(Session* session);
  void HandleFrame(Session* session, FrameType type,
                   std::span<const uint8_t> payload);
  void SendError(Session* session, ErrorCode code, uint64_t request_id,
                 const std::string& message, bool close_connection);
  /// Encodes an EPOCH_INFO answer for `epoch` with the backend's
  /// dynamic/deformer metadata (the reply to STEP, PIN and UNPIN).
  void AppendCurrentEpochInfo(Session* session, engine::EpochInfo epoch);
  /// Executes a QUERY_BATCH aimed at a historical epoch inline (no
  /// cross-request coalescing: batches are epoch-consistent, so only
  /// same-epoch queries could ever share a sweep) and answers RESULT or
  /// a request-scoped EPOCH_GONE.
  void ExecuteHistorical(Session* session, const PendingRequest& request,
                         uint64_t epoch);
  /// Encodes one completed request into its session's write buffer (or
  /// a request-scoped error when the result exceeds the frame cap).
  void DeliverResult(const CompletedRequest& done, int64_t done_at);
  void ExecuteDueBatches(int64_t now_nanos);
  /// Closes sessions silent past the idle deadline (typed TIMEOUT
  /// error); returns nanos until the next session times out (-1: none).
  int64_t EnforceIdleDeadlines(int64_t now_nanos);
  void FlushSession(Session* session);
  void CloseSession(uint64_t session_id);
  void DrainAndClose();
  /// Path-routed introspection handler behind `metrics_http_`.
  obs::HttpTextEndpoint::Response RouteHttp(const std::string& path) const;
  /// Emits into the attached journal (no-op when none is attached).
  void Journal(obs::EventKind kind, uint64_t epoch = 0,
               uint64_t session = 0, uint64_t a = 0, uint64_t b = 0) {
    if (options_.journal != nullptr) {
      options_.journal->Emit(kind, epoch, session, a, b);
    }
  }

  std::unique_ptr<VersionedBackend> backend_;
  ServerOptions options_;
  ServerMetrics metrics_;
  BatchScheduler scheduler_;
  obs::FlightRecorder recorder_;
  obs::HttpTextEndpoint metrics_http_;

  int listen_fd_ = -1;
  int wake_fd_read_ = -1;
  int wake_fd_write_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_requested_{false};

  /// Accept is paused until this instant after an accept() failure
  /// (e.g. EMFILE) so the loop does not busy-spin on a hot listener.
  int64_t accept_retry_at_nanos_ = 0;

  uint64_t next_session_id_ = 1;
  std::map<uint64_t, std::unique_ptr<Session>> sessions_;
  std::vector<CompletedRequest> completed_scratch_;
  std::vector<uint64_t> closed_scratch_;
};

}  // namespace octopus::server

#endif  // OCTOPUS_SERVER_SERVER_H_
