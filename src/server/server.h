// Copyright 2026 The OCTOPUS Reproduction Authors
// The network query service: a multi-threaded, epoll-based TCP server
// speaking the OCTP protocol. The front end is a four-stage pipeline:
//
//   main thread      accept + wake pipe + introspection HTTP; assigns
//                    each new connection to an I/O thread (sharded by
//                    fd) and orchestrates the drain sequence.
//   N I/O threads    one epoll each; per-connection framing, inline
//                    control verbs (HELLO/STATS/STEP/PIN/TRACE_DUMP),
//                    query admission into the scheduler, idle
//                    deadlines, and gathering `sendmsg` flushes of
//                    pre-framed output. Connections never migrate, so
//                    all per-session state stays thread-local.
//   scheduler thread coalesces queries across connections (the
//                    existing `BatchScheduler`, unchanged) and runs
//                    engine batches; query-execution parallelism lives
//                    inside the backend's `QueryEngine` thread pool.
//   serializer thread encodes RESULT/ERROR frames off the I/O threads
//                    (zero-copy: result vectors ride the frame as
//                    iovec segments, see server/io_pipeline.h) and
//                    hands each I/O thread finished buffers.
//
// `io_threads = 1` reproduces the previous single-loop server's
// observable behavior exactly — same admission, coalescing, drain,
// journal and metrics semantics — just with the stages on their own
// threads. See docs/ARCHITECTURE.md for the full thread model and
// docs/OBSERVABILITY.md for which thread emits which metric.
//
// Lifecycle: `Start` binds and listens (port 0 = ephemeral, then
// `port()` reports the actual one), `Run` spawns the pipeline threads
// and blocks until `Stop`. `Stop` — safe from any thread or signal
// handler — triggers a graceful shutdown: stop accepting, execute
// every pending batch, flush write buffers (bounded by
// `drain_timeout_nanos`), close.
#ifndef OCTOPUS_SERVER_SERVER_H_
#define OCTOPUS_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/event_journal.h"
#include "obs/http_endpoint.h"
#include "obs/trace.h"
#include "server/batch_scheduler.h"
#include "server/io_pipeline.h"
#include "server/metrics.h"
#include "server/protocol.h"
#include "server/versioned_backend.h"

namespace octopus::server {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = pick an ephemeral port
  int backlog = 64;
  size_t max_connections = 256;
  /// I/O threads serving connections (sharded by fd, never migrating).
  /// 1 reproduces the previous single-loop server; values < 1 are
  /// treated as 1. The CLI defaults `serve --io-threads` to
  /// min(4, hardware cores).
  int io_threads = 1;
  SchedulerOptions scheduler;
  /// Graceful-shutdown bound on flushing buffered responses.
  int64_t drain_timeout_nanos = 2'000'000'000;
  /// Backpressure watermark: a session whose unsent output exceeds this
  /// is not read from (no new requests admitted) until it drains, so a
  /// client that pipelines without reading cannot grow server memory
  /// unboundedly.
  size_t max_session_out_bytes = 64u << 20;
  /// Idle/handshake timeout: a session that has not delivered a single
  /// byte for this long — including one that never sent its HELLO — is
  /// answered with ERROR(TIMEOUT) and closed, so silent connections
  /// cannot pin `max_connections` slots forever. Sessions with a
  /// request in flight through the pipeline are exempt (they are
  /// waiting on us, not the reverse). 0 disables.
  int64_t idle_timeout_nanos = 300'000'000'000;  // 5 min
  /// Introspection HTTP port on `bind_address` (/metrics, /healthz,
  /// /readyz, /epochs, /journal): -1 disables the endpoint, 0 binds an
  /// ephemeral port (read it back via `metrics_port()`). Served by the
  /// main thread — OCTP STATS stays the authoritative snapshot;
  /// /metrics renders the same shared counters for scrapers.
  int metrics_port = -1;
  /// Lifecycle event journal (non-owning; may be null). The server
  /// emits session/overload/drain events into it, forwards it to the
  /// backend for step/epoch events at construction, serves it at
  /// /journal and counts it in /metrics. The caller keeps it alive for
  /// the server's lifetime.
  obs::EventJournal* journal = nullptr;
  /// /readyz flips to 503 when the newest epoch publication is older
  /// than this (a stepper that stopped stepping); 0 disables the lag
  /// check. Only meaningful on dynamic backends.
  int64_t ready_max_publish_lag_nanos = 0;
  /// Flight-recorder ring capacity in records; 0 disables tracing
  /// entirely (one predictable branch per request — see obs/trace.h).
  size_t trace_ring_slots = 1024;
  /// Requests whose arrival -> response-enqueue wall clock reaches this
  /// are counted and logged as structured slow-query lines on stderr.
  /// 0 disables.
  int64_t slow_query_nanos = 0;
};

class QueryServer {
 public:
  QueryServer(std::unique_ptr<VersionedBackend> backend,
              ServerOptions options);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Creates the listener and the wake pipe. After OK, `port()` is the
  /// bound port.
  Status Start();

  uint16_t port() const { return port_; }

  /// Spawns the pipeline threads and blocks the calling thread in the
  /// accept loop until `Stop`. Returns non-OK only on unrecoverable
  /// errors (poll/epoll setup or failure); the pipeline is torn down
  /// either way.
  Status Run();

  /// Requests a graceful shutdown; callable from any thread and from
  /// signal handlers (one atomic store + one pipe write).
  void Stop();

  /// Bound /metrics port; 0 while the endpoint is disabled.
  uint16_t metrics_port() const { return metrics_http_.port(); }

  /// The live shared counters (atomics — individually consistent at
  /// any time, mutually consistent once `Run` has returned). The
  /// `loop_stall` field on this reference is always empty: stalls are
  /// sharded per I/O thread; read them via `MetricsSnapshot`.
  const ServerMetrics& metrics() const { return metrics_; }
  /// A copy of the counters with the per-I/O-thread stall shards
  /// merged into `loop_stall` — what benches and scrapers want.
  ServerMetrics MetricsSnapshot() const;
  /// The flight-recorder ring (internally synchronized).
  const obs::FlightRecorder& recorder() const { return recorder_; }
  /// Renders the Prometheus exposition /metrics serves — public so
  /// tests can assert STATS parity without an HTTP round trip.
  std::string RenderMetricsText() const;
  /// Renders the JSON /epochs serves (retention-ring view; a static
  /// backend reports "dynamic": false with no entries) — public for
  /// the same reason.
  std::string RenderEpochsJson() const;
  /// Renders the JSON /journal serves ({"total","capacity","events"}),
  /// empty-events when no journal is attached.
  std::string RenderJournalJson() const;
  /// The /readyz answer: 200 + JSON when ready, 503 + JSON when the
  /// epoch-publication lag is over the bound or the spill sidecar has
  /// failing epochs.
  obs::HttpTextEndpoint::Response ReadyzResponse() const;
  /// The backend. `AdvanceStep`, `CurrentEpoch` and the pin verbs on
  /// it are safe from any thread (see VersionedBackend's thread
  /// model); `Execute`/`ExecuteAt` belong to the scheduler thread.
  VersionedBackend* backend() { return backend_.get(); }

 private:
  struct Session;
  struct IoThread;
  /// A historical-epoch request awaiting the scheduler thread. Kept
  /// out of the coalescing queue (a batch is epoch-consistent; only
  /// same-epoch queries could share a sweep) but executed on the same
  /// thread, since the backend's execute path is single-threaded.
  struct ImmediateRequest {
    PendingRequest request;
    uint64_t epoch = 0;
  };
  /// One unit of serialization work.
  struct SerTask {
    enum class Kind : uint8_t { kResult, kError, kDrain };
    Kind kind = Kind::kResult;
    CompletedRequest done;                  // kResult
    uint64_t session_id = 0;                // kError
    uint64_t request_id = 0;                // kError
    ErrorCode code = ErrorCode::kInternal;  // kError
    std::string message;                    // kError
  };

  int64_t NowNanos() const;
  size_t ResolvedIoThreads() const;
  Status Listen();
  /// Nudges the main poll loop (e.g. so it re-arms accepting after an
  /// I/O thread closed a session at the connection cap).
  void WakeMain();
  void AcceptNew();

  // --- I/O threads ---
  void IoLoop(size_t index);
  void ProcessInbox(IoThread& io, bool* draining);
  void ReadSession(IoThread& io, Session* session);
  void HandleFrame(Session* session, FrameType type,
                   std::span<const uint8_t> payload);
  void SendError(Session* session, ErrorCode code, uint64_t request_id,
                 const std::string& message, bool close_connection);
  /// Encodes an EPOCH_INFO answer for `epoch` with the backend's
  /// dynamic/deformer metadata (the reply to STEP, PIN and UNPIN).
  void AppendCurrentEpochInfo(Session* session, engine::EpochInfo epoch);
  /// Closes sessions silent past the idle deadline (typed TIMEOUT
  /// error); returns nanos until the next session times out (-1: none).
  int64_t EnforceIdleDeadlines(IoThread& io, int64_t now_nanos);
  void FlushSession(IoThread& io, Session* session);
  void UpdateInterest(IoThread& io, Session* session);
  void CloseSession(IoThread& io, uint64_t session_id);
  void ProcessClosures(IoThread& io);
  /// The I/O thread's share of the drain: typed goodbye, bounded
  /// flush, close of condemned/half-closed sessions. Healthy sessions
  /// stay open for the main thread to close after kDrainEnded.
  void DrainIoThread(IoThread& io);

  // --- scheduler / serializer threads ---
  void SchedulerLoop();
  /// Scheduler: runs one historical request (the backend execute path
  /// is single-threaded, so `sched_mu_` stays held across execution).
  void ExecuteImmediate(ImmediateRequest req) REQUIRES(sched_mu_);
  void SerializerLoop();
  /// Serializer: encodes one completed request (RESULT, or a
  /// request-scoped error past the frame cap), updates latency/trace
  /// accounting, dispatches to the owning I/O thread.
  void DeliverCompleted(CompletedRequest done);
  void DeliverError(const SerTask& task);
  void DispatchOutbound(uint64_t session_id, OutFrame frame,
                        bool completes_request);
  void EnqueueSerTask(SerTask task) EXCLUDES(ser_mu_);

  void DrainAndClose();
  /// Path-routed introspection handler behind `metrics_http_`.
  obs::HttpTextEndpoint::Response RouteHttp(const std::string& path) const;
  /// Emits into the attached journal (no-op when none is attached).
  void Journal(obs::EventKind kind, uint64_t epoch = 0,
               uint64_t session = 0, uint64_t a = 0, uint64_t b = 0) {
    if (options_.journal != nullptr) {
      options_.journal->Emit(kind, epoch, session, a, b);
    }
  }

  std::unique_ptr<VersionedBackend> backend_;
  ServerOptions options_;
  ServerMetrics metrics_;
  BatchScheduler scheduler_ GUARDED_BY(sched_mu_);
  obs::FlightRecorder recorder_;
  obs::HttpTextEndpoint metrics_http_;

  int listen_fd_ = -1;
  int wake_fd_read_ = -1;
  int wake_fd_write_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_requested_{false};

  /// Accept is paused until this instant after an accept() failure
  /// (e.g. EMFILE) so the loop does not busy-spin on a hot listener.
  /// Main-thread state, like `next_session_id_`.
  int64_t accept_retry_at_nanos_ = 0;
  uint64_t next_session_id_ = 1;

  /// The I/O threads; built once in `Run`, kept (joined) afterwards so
  /// post-run snapshots can still merge the stall shards.
  std::vector<std::unique_ptr<IoThread>> io_;
  /// session id -> I/O thread index; written by the main thread at
  /// accept, erased by the owning I/O thread at close, read by the
  /// serializer to route outbound frames.
  mutable common::Mutex owner_mu_;
  std::unordered_map<uint64_t, uint32_t> owner_ GUARDED_BY(owner_mu_);
  std::atomic<uint64_t> active_sessions_{0};
  /// Outstanding epoch pins across all sessions (the /metrics gauge —
  /// sessions are thread-local, so the gauge is kept here).
  std::atomic<uint64_t> session_pins_{0};

  common::Mutex sched_mu_;
  common::CondVar sched_cv_;
  std::deque<ImmediateRequest> immediate_ GUARDED_BY(sched_mu_);
  bool drain_requested_ GUARDED_BY(sched_mu_) = false;
  /// Set by the scheduler thread once it has drained and exited; from
  /// then on admission answers SHUTTING_DOWN instead of enqueueing
  /// work nothing would ever execute.
  bool sched_closed_ GUARDED_BY(sched_mu_) = false;
  std::thread sched_thread_;

  common::Mutex ser_mu_ ACQUIRED_AFTER(sched_mu_);
  common::CondVar ser_cv_;
  std::deque<SerTask> ser_tasks_ GUARDED_BY(ser_mu_);
  std::thread ser_thread_;
};

}  // namespace octopus::server

#endif  // OCTOPUS_SERVER_SERVER_H_
