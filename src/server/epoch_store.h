// Copyright 2026 The OCTOPUS Reproduction Authors
// The epoch retention layer: a bounded ring of recently published mesh
// epochs. PR 4 made epochs fire-and-forget — each step's state was
// reachable only until the next step replaced it, and a long run kept
// no queryable history. The store turns "stale but live" into "stale,
// live, *and* repeatable": the newest epochs stay memory-resident
// (count- and byte-capped retention window), older epochs are spilled
// to an on-disk `.oct2d` sidecar and transparently reloaded through a
// byte-capped BufferManager when queried, and epochs past the history
// cap are evicted entirely — unless a session pinned them, which exempts
// them from eviction (never from spilling: pins cost disk, not memory)
// until the pin is released or the session dies. Querying an
// evicted-and-unpinned epoch is a typed EPOCH_GONE error, not silence.
//
// Thread model: `Publish` belongs to the stepper (one at a time);
// `PinNewest` / `PinEpoch` / `AddPin` / `ReleasePin` are safe from any
// thread concurrently with it. One mutex guards the ring, so the newest
// epoch is published atomically — a concurrent pin observes either the
// whole previous epoch or the whole next one, never a half-updated mix
// (the invariant the dynamic-serving tests stress under TSan).
#ifndef OCTOPUS_SERVER_EPOCH_STORE_H_
#define OCTOPUS_SERVER_EPOCH_STORE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "engine/mesh_epoch.h"
#include "obs/event_journal.h"
#include "sim/versioned_mesh.h"
#include "storage/delta_overlay.h"
#include "storage/epoch_spill.h"

namespace octopus::server {

/// \brief Knobs of the retention window and spill sidecar.
struct EpochRetentionOptions {
  /// Epochs kept memory-resident, newest first. The serving hot path
  /// (current-epoch queries) never touches the sidecar. Must be >= 1.
  size_t retention_epochs = 8;
  /// Byte cap on resident overlay/position memory: when the resident
  /// epochs' bytes exceed it, the oldest are spilled early even inside
  /// the count window (the newest epoch is always exempt). Must be >= 1.
  size_t retention_bytes = 256u << 20;
  /// Total ring capacity, resident + spilled; older epochs are evicted
  /// (EPOCH_GONE) unless pinned. Must be >= retention_epochs.
  size_t history_epochs = 64;
  /// Spill sidecar path (`.oct2d`). Empty = spilling disabled: epochs
  /// leaving the retention window are evicted directly, and pinned
  /// epochs stay resident (pins then cost memory, not disk).
  std::string spill_path;
  /// Byte cap of the sidecar's reload pool (>= 2 pages).
  size_t spill_pool_bytes = 1u << 20;

  /// Rejects windows that cannot hold a single epoch and inconsistent
  /// caps — the validation `octopus_cli serve` applies up front.
  Status Validate() const;
};

/// \brief What a query pins: one epoch's identity plus its position
/// state — a delta overlay (paged backend) or a full position buffer
/// (in-memory backend). Plain value; the shared_ptrs keep the state
/// alive and immutable for the duration of the batch.
struct PinnedEpochState {
  engine::EpochInfo info;
  std::shared_ptr<const storage::PositionOverlay> overlay;
  std::shared_ptr<const PositionEpoch> positions;
};

/// \brief One ring entry as the `/epochs` introspection endpoint sees
/// it — identity, placement (resident/spilled), pins and memory cost.
struct EpochEntryView {
  engine::EpochInfo info;
  bool resident = false;
  bool spilled = false;
  bool spill_failed = false;
  uint32_t pins = 0;
  uint64_t resident_bytes = 0;
};

/// \brief A consistent point-in-time view of the whole retention ring
/// plus the sidecar's append totals. The ring part is one `mu_`
/// critical section (entries are mutually consistent); the sidecar
/// counters are read separately under the spill-I/O lock and may be a
/// beat ahead of the ring during an in-flight spill.
struct EpochStoreView {
  std::vector<EpochEntryView> entries;  ///< ascending epoch id
  uint64_t resident_bytes = 0;
  uint64_t evicted_total = 0;
  bool spill_enabled = false;
  uint64_t spill_pages_written = 0;
  uint64_t spill_bytes_written = 0;
};

class EpochStore {
 public:
  /// `page_bytes` sizes the spill sidecar's pages (the snapshot's page
  /// size on the paged backend; a default for in-memory).
  EpochStore(uint32_t page_bytes, EpochRetentionOptions options);
  ~EpochStore();

  EpochStore(const EpochStore&) = delete;
  EpochStore& operator=(const EpochStore&) = delete;

  /// Validates the options and creates the spill sidecar (when a path
  /// is configured). Call once before the first `Publish`.
  Status Init();

  /// Points epoch-lifecycle events (published/spilled/reloaded/evicted)
  /// at `journal` (non-owning; null detaches). Call before the stepper
  /// starts — the pointer itself is unsynchronized.
  void AttachJournal(obs::EventJournal* journal) { journal_ = journal; }

  /// Publishes `state` as the new newest epoch (its `info.epoch` must
  /// be strictly larger than the current newest), then enforces
  /// retention: spills resident epochs past the window (or byte cap)
  /// and evicts unpinned epochs past the history cap.
  void Publish(PinnedEpochState state);

  /// The newest epoch; nullopt before the first `Publish`.
  std::optional<PinnedEpochState> PinNewest() const;
  engine::EpochInfo CurrentInfo() const;

  /// Pins epoch `id` for one batch: resident state is returned as-is;
  /// a spilled paged epoch returns its sidecar-backed overlay (reads
  /// price page I/O into the executing contexts' stats); a spilled
  /// in-memory epoch is rematerialized transiently from the sidecar,
  /// with the reload I/O counted into `reload_stats`. NotFound = the
  /// epoch was evicted (or never existed): the EPOCH_GONE case.
  Result<PinnedEpochState> PinEpoch(engine::EpochId id,
                                    storage::PageIOStats* reload_stats);

  /// Session-pin accounting: a pinned epoch is exempt from eviction
  /// until every pin is released. Returns the pinned epoch's identity;
  /// NotFound when it is already gone.
  Result<engine::EpochInfo> AddPin(engine::EpochId id);
  /// Pins whatever is current — resolved and pinned in ONE critical
  /// section, so "pin current" can never lose a race with a concurrent
  /// publish evicting the epoch it just read. NotFound only before the
  /// first publish.
  Result<engine::EpochInfo> AddPinNewest();
  /// Releases one pin and re-enforces retention (an unpinned epoch past
  /// the window is evicted immediately, not at the next step). NotFound
  /// when the epoch is unknown.
  Status ReleasePin(engine::EpochId id);

  // --- Observability (tests, bench, STATS) ---
  /// Resident overlay/position bytes attributable to stored epochs
  /// (per-epoch sum; structurally shared pages count once per epoch
  /// sharing them, an upper bound). The O(window) quantity.
  size_t resident_bytes() const;
  size_t resident_epochs() const;
  size_t spilled_epochs() const;
  uint64_t epochs_evicted() const;
  uint64_t spill_pages_written() const;
  uint64_t spill_bytes_written() const;

  /// Entries whose spill failed (disk full / I/O error): they survive
  /// only as pinned memory, so a nonzero count means the sidecar is
  /// unhealthy — the `/readyz` signal.
  size_t spill_failed_epochs() const;
  /// Monotonic timestamp of the most recent `Publish` (0 before the
  /// first): `now - last` is the epoch-publication lag `/readyz`
  /// reports on a server whose stepper should be running.
  int64_t last_publish_steady_nanos() const {
    return last_publish_nanos_.load(std::memory_order_acquire);
  }

  /// The `/epochs` snapshot: every ring entry plus sidecar totals.
  EpochStoreView View() const;

  const EpochRetentionOptions& options() const { return options_; }

 private:
  struct Entry {
    engine::EpochInfo info;
    std::shared_ptr<const storage::PositionOverlay> overlay;
    std::shared_ptr<const PositionEpoch> positions;
    /// In-memory spill record: first sidecar page of the packed
    /// position array (kInvalidPageId while resident) and its length.
    storage::PageId spill_first = storage::kInvalidPageId;
    size_t spill_count = 0;
    uint32_t pins = 0;
    bool spilled = false;
    /// A spill's disk I/O is in flight for this entry (the ring mutex
    /// is released around it); the entry stays resident and queryable
    /// until the twin is installed.
    bool spilling = false;
    /// The sidecar refused this entry once; treat it as unspillable
    /// (evict if unpinned) instead of retrying forever.
    bool spill_failed = false;
    size_t resident = 0;  ///< bytes this entry holds in memory
  };

  /// Spills or evicts until the window/byte/history caps hold. Runs
  /// under the caller's `mu_` and RELEASES it around each spill's disk
  /// I/O, so concurrent pins never wait out an fwrite — publication
  /// stays the O(1) pointer work the serving path was promised.
  void EnforceRetention() REQUIRES(mu_);
  /// Writes one entry's state to the sidecar: snapshots it under the
  /// lock, appends + syncs unlocked (serialized by `spill_io_mu_`),
  /// then relocks and installs the disk-backed twin — unless the entry
  /// was evicted meanwhile (its orphaned sidecar pages are the cost of
  /// not blocking queries). `mu_` is held on entry and on return, but
  /// NOT across the append (the body drops and re-takes it).
  void SpillOne(engine::EpochId id) REQUIRES(mu_);
  Entry* FindLocked(engine::EpochId id) REQUIRES(mu_);
  size_t ResidentBytesLocked() const REQUIRES(mu_);

  const uint32_t page_bytes_;
  const EpochRetentionOptions options_;
  /// Created once in `Init` before any concurrency; the object is
  /// internally single-writer (appends serialized by `spill_io_mu_`)
  /// with a thread-safe reload pool.
  std::unique_ptr<storage::EpochSpillFile> spill_;
  /// Serializes sidecar appends across concurrent retention passes
  /// (Publish on the stepper vs ReleasePin on the event loop) and
  /// guards reads of the sidecar's append counters. Never held
  /// together with a *blocked* `mu_`: acquired only while `mu_` is
  /// released.
  mutable common::Mutex spill_io_mu_;

  mutable common::Mutex mu_;
  /// Ascending epoch ids; back() is newest.
  std::deque<Entry> ring_ GUARDED_BY(mu_);
  uint64_t evicted_ GUARDED_BY(mu_) = 0;

  /// Lifecycle event sink; null = silent, set before the stepper starts
  /// (`AttachJournal`). The journal is internally synchronized and its
  /// lock is a leaf, so emitting under `mu_` is deadlock-free.
  obs::EventJournal* journal_ = nullptr;
  std::atomic<int64_t> last_publish_nanos_{0};
};

}  // namespace octopus::server

#endif  // OCTOPUS_SERVER_EPOCH_STORE_H_
