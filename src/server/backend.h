// Copyright 2026 The OCTOPUS Reproduction Authors
// The server's query backend: one OCTOPUS executor — in-memory mesh or
// paged OCT2 snapshot — plus the `QueryEngine` that runs coalesced
// batches on it. Isolates the event loop from every storage/engine
// detail: the loop hands it boxes, gets per-query results and the
// batch's `PhaseStats` delta back.
#ifndef OCTOPUS_SERVER_BACKEND_H_
#define OCTOPUS_SERVER_BACKEND_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "common/status.h"
#include "engine/query_engine.h"
#include "mesh/tetra_mesh.h"
#include "octopus/paged_executor.h"
#include "octopus/query_executor.h"

namespace octopus::server {

/// \brief Executes query batches for the server, over either backing
/// store. Single-threaded interface (the event loop is the only caller);
/// internal query parallelism comes from the engine's thread pool.
class QueryBackend {
 public:
  /// In-memory backend over an OCT1 mesh file (loads + builds the
  /// surface index).
  static Result<std::unique_ptr<QueryBackend>> OpenMeshFile(
      const std::string& path, int threads);

  /// In-memory backend over an already-built mesh (tests, benches).
  static std::unique_ptr<QueryBackend> FromMesh(TetraMesh mesh,
                                                int threads);

  /// Out-of-core backend over an OCT2 snapshot with a byte-capped pool.
  static Result<std::unique_ptr<QueryBackend>> OpenSnapshot(
      const std::string& path, size_t pool_bytes, int threads);

  /// Executes one coalesced batch; `batch_stats` receives exactly this
  /// batch's stats (the executor's counters are reset per batch, so the
  /// delta is deterministic and, for a single-request batch, identical
  /// to an in-process run of the same queries).
  void Execute(std::span<const AABB> boxes, engine::QueryBatchResult* out,
               PhaseStats* batch_stats);

  bool paged() const { return paged_ != nullptr; }
  uint64_t num_vertices() const { return num_vertices_; }
  /// Snapshot page size; 0 for the in-memory backend.
  uint32_t page_bytes() const { return page_bytes_; }
  int threads() const { return engine_.threads(); }

 private:
  QueryBackend(int threads)
      : engine_(engine::QueryEngineOptions{.threads = threads}) {}

  engine::QueryEngine engine_;
  // Exactly one of the two backends is set.
  std::unique_ptr<TetraMesh> mesh_;
  std::unique_ptr<Octopus> octopus_;
  std::unique_ptr<PagedOctopus> paged_;
  uint64_t num_vertices_ = 0;
  uint32_t page_bytes_ = 0;
};

}  // namespace octopus::server

#endif  // OCTOPUS_SERVER_BACKEND_H_
