// Copyright 2026 The OCTOPUS Reproduction Authors
#include "server/epoch_store.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <utility>
#include <vector>

namespace octopus::server {
namespace {

int64_t SteadyNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Status EpochRetentionOptions::Validate() const {
  if (retention_epochs < 1) {
    return Status::InvalidArgument(
        "retention-epochs must be at least 1 epoch (the current epoch "
        "cannot be spilled)");
  }
  if (retention_bytes < 1) {
    return Status::InvalidArgument(
        "retention-bytes must be at least 1 byte");
  }
  if (history_epochs < retention_epochs) {
    return Status::InvalidArgument(
        "history-epochs (" + std::to_string(history_epochs) +
        ") must cover the retention window (" +
        std::to_string(retention_epochs) + " epochs)");
  }
  return Status::OK();
}

EpochStore::EpochStore(uint32_t page_bytes, EpochRetentionOptions options)
    : page_bytes_(page_bytes), options_(std::move(options)) {}

EpochStore::~EpochStore() = default;

Status EpochStore::Init() {
  OCTOPUS_RETURN_NOT_OK(options_.Validate());
  if (!options_.spill_path.empty()) {
    auto spill = storage::EpochSpillFile::Create(
        options_.spill_path, page_bytes_, options_.spill_pool_bytes);
    if (!spill.ok()) return spill.status();
    spill_ = spill.MoveValue();
  }
  return Status::OK();
}

void EpochStore::Publish(PinnedEpochState state) {
  common::MutexLock lock(mu_);
  assert((ring_.empty() || state.info.epoch > ring_.back().info.epoch) &&
         "epoch ids must be strictly increasing");
  Entry entry;
  entry.info = state.info;
  entry.overlay = std::move(state.overlay);
  entry.positions = std::move(state.positions);
  entry.resident =
      entry.overlay != nullptr ? entry.overlay->resident_bytes()
      : entry.positions != nullptr
          ? entry.positions->positions.size() * sizeof(Vec3)
          : 0;
  ring_.push_back(std::move(entry));
  last_publish_nanos_.store(SteadyNanos(), std::memory_order_release);
  if (journal_ != nullptr) {
    journal_->Emit(obs::EventKind::kEpochPublished, state.info.epoch, 0,
                   state.info.step, ResidentBytesLocked());
  }
  EnforceRetention();
}

std::optional<PinnedEpochState> EpochStore::PinNewest() const {
  common::MutexLock lock(mu_);
  if (ring_.empty()) return std::nullopt;
  const Entry& newest = ring_.back();
  return PinnedEpochState{newest.info, newest.overlay, newest.positions};
}

engine::EpochInfo EpochStore::CurrentInfo() const {
  common::MutexLock lock(mu_);
  return ring_.empty() ? engine::EpochInfo{} : ring_.back().info;
}

Result<PinnedEpochState> EpochStore::PinEpoch(
    engine::EpochId id, storage::PageIOStats* reload_stats) {
  common::MutexLock lock(mu_);
  if (Entry* found = FindLocked(id)) {
    Entry& entry = *found;
    if (!entry.spilled || entry.overlay != nullptr ||
        entry.spill_first == storage::kInvalidPageId) {
      // Resident, sidecar-backed overlay, or the overlay-less initial
      // epoch (the base snapshot is its state): hand it out as-is.
      return PinnedEpochState{entry.info, entry.overlay, entry.positions};
    }
    // Spilled in-memory epoch: rematerialize the position array from
    // the sidecar, transiently — it is NOT cached back, so memory stays
    // O(window) between historical queries. (The reload runs under the
    // ring mutex, briefly delaying a concurrent step; at monitoring
    // batch rates that is noise, and it keeps publication trivially
    // atomic.)
    auto reloaded = std::make_shared<PositionEpoch>();
    reloaded->info = entry.info;
    reloaded->positions.resize(entry.spill_count);
    const Status read = spill_->ReadPositions(
        entry.spill_first, entry.spill_count, reloaded->positions.data(),
        reload_stats);
    if (!read.ok()) return read;
    if (journal_ != nullptr) {
      journal_->Emit(obs::EventKind::kEpochReloaded, id, 0,
                     entry.spill_count);
    }
    return PinnedEpochState{entry.info, nullptr, std::move(reloaded)};
  }
  return Status::NotFound(
      "epoch " + std::to_string(id) +
      " is gone: evicted from the bounded history (or never published)");
}

Result<engine::EpochInfo> EpochStore::AddPin(engine::EpochId id) {
  common::MutexLock lock(mu_);
  if (Entry* entry = FindLocked(id)) {
    ++entry->pins;
    return entry->info;
  }
  return Status::NotFound("epoch " + std::to_string(id) +
                          " is gone: nothing to pin");
}

Result<engine::EpochInfo> EpochStore::AddPinNewest() {
  common::MutexLock lock(mu_);
  if (ring_.empty()) {
    return Status::NotFound("no epoch has been published yet");
  }
  ++ring_.back().pins;
  return ring_.back().info;
}

Status EpochStore::ReleasePin(engine::EpochId id) {
  common::MutexLock lock(mu_);
  Entry* entry = FindLocked(id);
  if (entry == nullptr) {
    return Status::NotFound("epoch " + std::to_string(id) +
                            " is gone: nothing to unpin");
  }
  if (entry->pins == 0) {
    return Status::NotFound("epoch " + std::to_string(id) +
                            " is not pinned");
  }
  --entry->pins;
  // Re-enforce immediately: an unpinned epoch past the history cap
  // becomes EPOCH_GONE now, not at the next step.
  EnforceRetention();
  return Status::OK();
}

size_t EpochStore::ResidentBytesLocked() const {
  size_t bytes = 0;
  for (const Entry& entry : ring_) bytes += entry.resident;
  return bytes;
}

EpochStore::Entry* EpochStore::FindLocked(engine::EpochId id) {
  // Epoch ids are ascending (eviction leaves holes but never reorders),
  // so the ring is binary-searchable — keeps lookups cheap even at the
  // CLI's largest accepted history caps.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), id,
      [](const Entry& entry, engine::EpochId target) {
        return entry.info.epoch < target;
      });
  return it != ring_.end() && it->info.epoch == id ? &*it : nullptr;
}

void EpochStore::SpillOne(engine::EpochId id) {
  // Snapshot the state to write under the lock; the entry stays
  // resident (and queryable) while the I/O runs.
  std::shared_ptr<const storage::PositionOverlay> overlay;
  std::shared_ptr<const PositionEpoch> positions;
  {
    Entry* entry = FindLocked(id);
    if (entry == nullptr || entry->spilled || entry->spilling) return;
    entry->spilling = true;
    overlay = entry->overlay;
    positions = entry->positions;
  }

  mu_.Unlock();
  // The sidecar append runs with the ring unlocked: a concurrent
  // current-epoch pin never waits out an fwrite. spill_io_mu_ keeps
  // two retention passes (stepper's Publish vs event loop's
  // ReleasePin) from interleaving appends.
  bool ok = true;
  std::vector<storage::PageId> overlay_ids;
  storage::PageId first = storage::kInvalidPageId;
  uint64_t pages_before = 0;
  uint64_t bytes_before = 0;
  uint64_t pages_after = 0;
  uint64_t bytes_after = 0;
  {
    common::MutexLock io_lock(spill_io_mu_);
    pages_before = spill_->pages_written();
    bytes_before = spill_->bytes_written();
    if (overlay != nullptr) {
      // Paged: append every memory-resident page (zero-padded to the
      // writer's page size). The spilled_id carry-over keeps this
      // total for overlays that already have sidecar-backed entries;
      // note that pages *structurally shared in memory* between
      // consecutive epochs are still appended once per spilled epoch —
      // cross-epoch sidecar dedup (pointer->page map) is the ROADMAP'd
      // compaction work, and the duplication costs disk, never
      // correctness.
      overlay_ids.assign(overlay->num_page_slots(),
                         storage::kInvalidPageId);
      for (uint64_t page = 0; ok && page < overlay_ids.size(); ++page) {
        if (const std::byte* bytes = overlay->Lookup(page)) {
          // Resident pages store entry bytes only; AppendPage zero-pads
          // them back to the writer's full page size.
          auto appended = spill_->AppendPage(std::span<const std::byte>(
              bytes, overlay->resident_page_bytes(page)));
          ok = appended.ok();
          if (ok) overlay_ids[page] = appended.Value();
        } else {
          overlay_ids[page] = overlay->spilled_id(page);
        }
      }
    } else {
      auto appended = spill_->AppendPositions(positions->positions);
      ok = appended.ok();
      if (ok) first = appended.Value();
    }
    ok = ok && spill_->Sync().ok();
    pages_after = spill_->pages_written();
    bytes_after = spill_->bytes_written();
  }
  mu_.Lock();

  Entry* entry = FindLocked(id);
  if (entry == nullptr) return;  // evicted meanwhile; pages orphaned
  entry->spilling = false;
  if (!ok) {
    // Marked rather than retried: a sidecar that failed once (disk
    // full, I/O error) would livelock the retention loop. The picker
    // treats the entry as unspillable — evicted if unpinned, resident
    // pin-memory otherwise.
    entry->spill_failed = true;
    return;
  }
  if (overlay != nullptr) {
    // Swap in the disk-backed twin. Readers still holding the resident
    // overlay drain naturally — copy-on-write all the way down.
    entry->overlay = storage::PositionOverlay::SpilledTwin(
        *overlay, std::move(overlay_ids), spill_->pool());
  } else {
    entry->spill_first = first;
    entry->spill_count = positions->positions.size();
    entry->positions.reset();
  }
  entry->spilled = true;
  entry->resident = 0;
  if (journal_ != nullptr) {
    journal_->Emit(obs::EventKind::kEpochSpilled, id, 0,
                   pages_after - pages_before, bytes_after - bytes_before);
  }
}

void EpochStore::EnforceRetention() {
  // Spill pass, oldest first. An epoch leaves the resident window when
  // more than `retention_epochs` epochs are resident behind it, or the
  // resident bytes exceed the cap; the newest epoch is always exempt
  // (the hot path must never pay sidecar I/O). Without a sidecar the
  // epoch is evicted instead — unless pinned, in which case it stays
  // resident (the documented memory cost of pinning without spill).
  // The scan restarts after every spill, because the ring may change
  // while the spill's disk I/O runs with the lock released.
  for (;;) {
    engine::EpochId to_spill = 0;
    bool found = false;
    size_t resident_count = 0;
    for (const Entry& entry : ring_) {
      resident_count += entry.spilled || entry.spilling ? 0 : 1;
    }
    // One O(ring) bytes sum per scan, maintained incrementally below —
    // never recomputed per entry (a byte-cap spill storm would turn
    // that quadratic).
    size_t resident_bytes = ResidentBytesLocked();
    for (size_t i = 0; i + 1 < ring_.size(); ++i) {
      Entry& entry = ring_[i];
      if (entry.spilled || entry.spilling) continue;
      const bool over_count = resident_count > options_.retention_epochs;
      const bool over_bytes = resident_bytes > options_.retention_bytes;
      if (!over_count && !over_bytes) break;
      if (entry.overlay == nullptr && entry.positions == nullptr) {
        // The overlay-less initial epoch: its state is the base
        // snapshot (or the static mesh); nothing resident to move.
        entry.spilled = true;
        entry.resident = 0;
        --resident_count;
        continue;
      }
      if (spill_ == nullptr || entry.spill_failed) {
        if (entry.pins > 0) {
          // Pinned and unspillable: stays resident, exempt — and
          // leaves the window accounting, so it cannot force younger,
          // in-window epochs out (pin-memory, not a window slot).
          --resident_count;
          resident_bytes -= entry.resident;
          continue;
        }
        resident_bytes -= entry.resident;
        if (journal_ != nullptr) {
          journal_->Emit(obs::EventKind::kEpochEvicted, entry.info.epoch,
                         0, entry.info.step, entry.spilled ? 1 : 0);
        }
        ring_.erase(ring_.begin() + static_cast<ptrdiff_t>(i));
        ++evicted_;
        --resident_count;
        --i;
        continue;
      }
      to_spill = entry.info.epoch;
      found = true;
      break;
    }
    if (!found) break;
    SpillOne(to_spill);
  }
  // Evict pass: drop the oldest unpinned epochs past the history cap.
  // Pins are exempt *on top of* the cap (they never steal a history
  // slot from a younger epoch): the ring holds at most history_epochs
  // unpinned entries plus every pinned one, and snaps back as pins
  // release — an epoch whose last pin goes away past the cap is evicted
  // by that very release.
  size_t pinned = 0;
  for (const Entry& entry : ring_) pinned += entry.pins > 0 ? 1 : 0;
  const size_t cap = options_.history_epochs + pinned;
  size_t excess = ring_.size() > cap ? ring_.size() - cap : 0;
  for (auto it = ring_.begin(); excess > 0 && it + 1 != ring_.end();) {
    if (it->pins == 0) {
      if (journal_ != nullptr) {
        journal_->Emit(obs::EventKind::kEpochEvicted, it->info.epoch, 0,
                       it->info.step, it->spilled ? 1 : 0);
      }
      it = ring_.erase(it);
      ++evicted_;
      --excess;
    } else {
      ++it;
    }
  }
}

size_t EpochStore::resident_bytes() const {
  common::MutexLock lock(mu_);
  return ResidentBytesLocked();
}

size_t EpochStore::resident_epochs() const {
  common::MutexLock lock(mu_);
  size_t n = 0;
  for (const Entry& entry : ring_) n += entry.spilled ? 0 : 1;
  return n;
}

size_t EpochStore::spilled_epochs() const {
  common::MutexLock lock(mu_);
  size_t n = 0;
  for (const Entry& entry : ring_) n += entry.spilled ? 1 : 0;
  return n;
}

uint64_t EpochStore::epochs_evicted() const {
  common::MutexLock lock(mu_);
  return evicted_;
}

uint64_t EpochStore::spill_pages_written() const {
  // The appender mutates the sidecar's page counter under spill_io_mu_
  // with the ring mutex deliberately released, so THIS is the lock
  // that synchronizes reads of it — mu_ would be a false friend.
  common::MutexLock lock(spill_io_mu_);
  return spill_ != nullptr ? spill_->pages_written() : 0;
}

uint64_t EpochStore::spill_bytes_written() const {
  common::MutexLock lock(spill_io_mu_);
  return spill_ != nullptr ? spill_->bytes_written() : 0;
}

size_t EpochStore::spill_failed_epochs() const {
  common::MutexLock lock(mu_);
  size_t n = 0;
  for (const Entry& entry : ring_) n += entry.spill_failed ? 1 : 0;
  return n;
}

EpochStoreView EpochStore::View() const {
  EpochStoreView view;
  {
    common::MutexLock lock(mu_);
    view.entries.reserve(ring_.size());
    for (const Entry& entry : ring_) {
      EpochEntryView e;
      e.info = entry.info;
      e.resident = !entry.spilled;
      e.spilled = entry.spilled;
      e.spill_failed = entry.spill_failed;
      e.pins = entry.pins;
      e.resident_bytes = entry.resident;
      view.entries.push_back(e);
    }
    view.resident_bytes = ResidentBytesLocked();
    view.evicted_total = evicted_;
    view.spill_enabled = spill_ != nullptr;
  }
  // Sidecar counters live under the spill-I/O lock (the appender runs
  // with `mu_` released); never nest the two.
  {
    common::MutexLock io_lock(spill_io_mu_);
    view.spill_pages_written = spill_ != nullptr ? spill_->pages_written() : 0;
    view.spill_bytes_written = spill_ != nullptr ? spill_->bytes_written() : 0;
  }
  return view;
}

}  // namespace octopus::server
